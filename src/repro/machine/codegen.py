"""Template-specialized code generation for the trace-replay engines.

The compiled replay layer (:mod:`repro.machine.compiled`) lowered traces to
flat opcode arrays, but both program flavours are still *interpreted*: a
``for step in program.steps`` loop with per-step tuple unpacking and opcode
dispatch.  This module removes that last layer of interpretation the same
way the vectorization literature removes per-element dispatch — by
specializing on the access pattern.  For each probe-verified shape class it
emits a straight-line Python function from the lowered program:

* every step unrolled, with register/slot indices, latencies, initiation
  intervals, issue width and miss penalties inlined as literals;
* scoreboard slots and single-pipe port frontiers held in plain locals
  instead of list/dict entries;
* statically dominated dependence checks pruned: issue times are monotone
  within a straight-line replay, so a dependence on a constant-latency
  writer is dropped whenever a later step in the same dependence set
  completes no earlier (equal-latency accumulator fans collapse to their
  last writer, and zero-latency writers never outrun the frontier);
* the L1 cache-probe and stream-prefetcher training fully inlined at each
  memory operation (multi-line walks keep their loops — line counts are
  address-dependent — but with all cache geometry folded to shift/mask
  literals); the one-time ``compile()`` cost of the large source is
  amortized by a process-wide compiled-function cache;
* guarded branches only where the trace actually branches (a step with no
  dependences emits no dependence compare at all).

The source is ``compile()``/``exec``-ed once and installed next to the
interpreted program on the :class:`~repro.machine.compiled.TimingProgram` /
:class:`~repro.machine.compiled.FunctionalProgram` object, so every pool
and memo layer keyed on program identity sees exactly one kernel per class.

Correctness follows the probe-verify-or-demote contract every prior engine
uses.  A generated kernel is never trusted until its first live use: the
timing flavour runs the generated function on a :meth:`PipelineModel.clone`
while the interpreted walk advances the real pipe, then compares the full
structural state (scoreboard, port frontiers, caches including LRU ticks,
dirty sets, stream table order, every counter).  The functional flavour
snapshots the touched architectural state, runs the generated function,
captures, restores, replays interpreted and compares bit-for-bit.  The
interpreted result always stands; any mismatch, raised exception, or
``compile`` failure demotes the class permanently to the interpreted
program.  Columnar Phase-P chunk bodies get the same treatment in
:mod:`repro.machine.columnar` (generated chunk walks verify against the
interpreted ``_scoreboard_walk`` on first use).

Generated source persists as artifact kind ``"codegen"`` in the AOT store
(:mod:`repro.machine.artifacts`): the payload carries the source, a sha256
over it, the generator version and a content digest over the program
payload + version.  Loads re-check all three and demote on tamper or
version skew; a loaded kernel still pays the one-live-emit probe before
being trusted.  ``repro precompile`` therefore ships warm kernels and
service workers never pay generation cost.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.registers import SVL_LANES
from repro.machine import artifacts
from repro.machine.compiled import (
    F_CONST,
    F_EXT,
    F_FADD,
    F_FMLA,
    F_FMLA_IDX,
    F_FMLA_M,
    F_FMOPA,
    F_FMUL_IDX,
    F_LD,
    F_LD_STRIDED,
    F_LD_TAIL,
    F_MOVA_TV,
    F_MOVA_VT,
    F_ST,
    F_ST_SLICE,
    F_ZERO,
    K_LOAD,
    K_PRFM,
    K_STORE,
    SCOREBOARD_KEYS,
    FunctionalProgram,
    TimingProgram,
    functional_program_to_payload,
    timing_program_to_payload,
)
from repro.machine.config import MachineConfig
from repro.machine.memory import PAGE_WORDS
from repro.machine.prefetcher import LINES_PER_PAGE, _Stream

# -- mode plumbing ------------------------------------------------------------

CODEGEN_MODES = ("on", "off")

#: Bump whenever the generated-source shape changes; skewed store entries
#: demote rather than mislead (belt and braces — the artifact meta's
#: code_version already re-keys every digest on source edits).
CODEGEN_VERSION = 2


def default_codegen() -> str:
    """Codegen mode from ``REPRO_CODEGEN`` (default ``"on"``)."""
    mode = os.environ.get("REPRO_CODEGEN", "on")
    if mode not in CODEGEN_MODES:
        raise ValueError(
            f"REPRO_CODEGEN must be one of {CODEGEN_MODES}, got {mode!r}"
        )
    return mode


# -- counters -----------------------------------------------------------------

_STATS_KEYS = (
    "generated",
    "loaded",
    "exec_failed",
    "demoted",
    "verified",
    "store_writes",
    "chunk_generated",
    "chunk_demoted",
)

CODEGEN_STATS: Dict[str, int] = {key: 0 for key in _STATS_KEYS}


def codegen_stats() -> Dict[str, int]:
    """Process-wide codegen pool counters (copy)."""
    return dict(CODEGEN_STATS)


def reset_codegen_stats() -> None:
    """Zero the codegen counters (tests)."""
    for key in _STATS_KEYS:
        CODEGEN_STATS[key] = 0


class CodegenState:
    """Per-program generated-kernel state, installed on the program object.

    ``fn`` is the compiled kernel (``None`` once demoted), ``verified``
    flips after the one-live-emit probe passes, and ``demoted`` is the
    permanent per-class kill switch.  ``chunk_fns`` maps columnar chunk
    indices to their generated walk functions (``False`` marks a chunk
    that failed its own verification).
    """

    __slots__ = ("fn", "source", "verified", "demoted", "chunk_fns")

    def __init__(self, fn=None, source: Optional[str] = None, demoted: bool = False) -> None:
        self.fn = fn
        self.source = source
        self.verified = False
        self.demoted = demoted
        self.chunk_fns: Dict[int, object] = {}

    def demote(self) -> None:
        if not self.demoted:
            self.demoted = True
            self.fn = None
            self.chunk_fns.clear()
            CODEGEN_STATS["demoted"] += 1


# -- shared emitter helpers ---------------------------------------------------


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _content_digest(payload: Dict) -> str:
    """Content digest over a program payload + the codegen version."""
    blob = json.dumps(payload, sort_keys=True) + f"|codegen-v{CODEGEN_VERSION}"
    return _sha256(blob)


#: Process-wide compiled-function cache.  Emission is cheap (string
#: concatenation); ``compile()`` of a multi-thousand-line kernel is not
#: (~tens of ms).  Address-specialized shape classes re-lower into *new*
#: program objects every run, but their generated source is identical —
#: keying on the source hash (plus whatever the exec namespace bakes in)
#: makes regeneration pay only emission, never recompilation.
_FN_CACHE: "OrderedDict[Tuple, object]" = OrderedDict()
_FN_CACHE_CAP = 1024


def _compile_fn(source: str, namespace: Dict, name: str = "__kernel", cache_key=None):
    """``compile``/``exec`` a generated source; ``None`` on any failure.

    ``cache_key`` (when given) must capture everything the resulting
    function closes over besides the source text — the namespace values
    that vary per program (port tuples, constant arrays).  Equal key +
    equal source means the compiled function is interchangeable.
    """
    if cache_key is not None:
        key = (name, _sha256(source), cache_key)
        fn = _FN_CACHE.get(key)
        if fn is not None:
            _FN_CACHE.move_to_end(key)
            return fn
    try:
        code = compile(source, "<repro-codegen>", "exec")
        scope = dict(namespace)
        exec(code, scope)
        fn = scope[name]
    except Exception:
        return None
    if cache_key is not None:
        _FN_CACHE[key] = fn
        if len(_FN_CACHE) > _FN_CACHE_CAP:
            _FN_CACHE.popitem(last=False)
    return fn


class _Emitter:
    """Tiny indented-source builder."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


# -- timing kernel emitter ----------------------------------------------------


def _emit_train(e: _Emitter, d: int, n1: int, n2: int) -> None:
    """Inlined stream-prefetcher training for one line (locals: line, hit).

    Fully inlined — every outcome (table hit, advance + prefetch issue,
    allocate, nothing) runs without a call frame, with the set counts and
    lines-per-page folded to literals.  The one-time ``compile()`` cost of
    the larger source is amortized by the process-wide function cache.
    """
    e.emit(d, "stream = pf_get(line)")
    e.emit(d, "if stream is not None:")
    e.emit(d + 1, "pf_move(line)")
    e.emit(d, "else:")
    e.emit(d + 1, "stream = pf_get(line - 1)")
    e.emit(d + 1, "if stream is not None:")
    e.emit(d + 2, "del pf_streams[line - 1]")
    e.emit(d + 2, "adv = stream.advances + 1")
    e.emit(d + 2, "stream.advances = adv")
    e.emit(d + 2, "stream.tail_line = line")
    e.emit(d + 2, "pf_streams[line] = stream")
    e.emit(d + 2, "if adv == pf_confirm:")
    e.emit(d + 3, "pf.streams_confirmed += 1")
    e.emit(d + 2, "if adv >= pf_confirm:")
    e.emit(d + 3, f"page = line // {LINES_PER_PAGE}")
    e.emit(d + 3, "for target in range(line + 1, line + pf_depth + 1):")
    e.emit(d + 4, f"if target // {LINES_PER_PAGE} != page:")
    e.emit(d + 5, "break")
    e.emit(d + 4, f"if target not in l1_sets[{_mod_expr('target', n1)}]:")
    e.emit(d + 5, "if watch is not None and target in watch:")
    e.emit(d + 6, "hierarchy.static_watch_hits += 1")
    e.emit(d + 5, f"ways2 = l2_sets[{_mod_expr('target', n2)}]")
    e.emit(d + 5, "if target in ways2:")
    e.emit(d + 6, "l2._tick += 1")
    e.emit(d + 6, "ways2[target] = l2._tick")
    e.emit(d + 5, "else:")
    e.emit(d + 6, "hierarchy.mem_lines_read += 1")
    e.emit(d + 6, "fill_l2(target)")
    e.emit(d + 5, "fill_l1(target, False)")
    e.emit(d + 5, "l1_stats.prefetch_fills += 1")
    e.emit(d + 4, "pf.prefetches_issued += 1")
    e.emit(d + 1, "elif not hit:")
    e.emit(d + 2, "pf_streams[line] = _Stream(tail_line=line)")
    e.emit(d + 2, "pf.streams_allocated += 1")
    e.emit(d + 2, "if len(pf_streams) > pf_max:")
    e.emit(d + 2, "    pf_streams.popitem(last=False)")


def _div_expr(expr: str, div: int) -> str:
    """Word-address -> line-index expression; shift when the divisor allows.

    Addresses are non-negative, so ``>>`` and ``//`` agree for powers of
    two — and the shift skips CPython's general division path.
    """
    if div > 0 and div & (div - 1) == 0:
        return f"({expr}) >> {div.bit_length() - 1}"
    return f"({expr}) // {div}"


def _mod_expr(var: str, mod: int) -> str:
    """Set-index expression; mask when the modulus is a power of two."""
    if mod > 0 and mod & (mod - 1) == 0:
        return f"{var} & {mod - 1}"
    return f"{var} % {mod}"


def _emit_l1_probe(
    e: _Emitter, d: int, is_store: bool, level_assign: bool, n1: int,
    count_da: bool = True,
) -> None:
    """Inlined single-line L1 probe (local: line; updates level/da/dh).

    ``level_assign`` emits ``level = miss(...)`` (single-line memop, level
    starts at 1) instead of the max-accumulating multi-line form.
    ``count_da`` is off when the demand-access count is statically folded
    (single-line memops contribute exactly one access each).
    """
    if count_da:
        e.emit(d, "da += 1")
    e.emit(d, f"ways = l1_sets[{_mod_expr('line', n1)}]")
    e.emit(d, "if line in ways:")
    e.emit(d + 1, "l1._tick += 1")
    e.emit(d + 1, "ways[line] = l1._tick")
    e.emit(d + 1, "dh += 1")
    if is_store:
        e.emit(d + 1, "l1_dirty.add(line)")
    e.emit(d, "else:")
    if level_assign:
        e.emit(d + 1, f"level = access_line_miss(line, {is_store})")
    else:
        e.emit(d + 1, f"lv = access_line_miss(line, {is_store})")
        e.emit(d + 1, "if lv > level:")
        e.emit(d + 2, "level = lv")


def _pruned_deps(
    dep_slots: Sequence[int],
    last_writer: Dict[int, int],
    wmin: Sequence[Tuple[bool, int]],
) -> List[int]:
    """Statically prune a step's dependence set.

    ``last_writer`` maps slot -> index of its most recent in-call writer;
    ``wmin[i]`` is ``(exact, c)`` for step ``i``: completion is exactly
    ``t_i + c`` when exact (fixed-latency op), at least that otherwise
    (loads, whose miss penalty is unbounded above).  Issue times are
    monotone along a straight-line replay, so for writers ``i < k`` in the
    same dependence set, ``done_k >= done_i`` holds statically whenever
    ``i`` is exact and ``c_k >= c_i`` — the dep on ``i`` can never decide
    the max and is dropped (equal-latency accumulator fans collapse to
    their last writer).  An exact zero-latency writer completes at its own
    issue time, which the entry frontier already covers.  Slots never
    written in this call stay: their values are runtime state.  Slots
    sharing one writer share one completion time, so each writer
    contributes once.
    """
    entry: List[int] = []
    by_writer: Dict[int, int] = {}
    for s in sorted(set(dep_slots)):
        w = last_writer.get(s)
        if w is None:
            entry.append(s)
        else:
            by_writer.setdefault(w, s)
    writers = sorted(by_writer)
    kept: List[int] = []
    for idx, i in enumerate(writers):
        exact, ci = wmin[i]
        if exact:
            if ci == 0:
                continue
            if any(wmin[k][1] >= ci for k in writers[idx + 1:]):
                continue
        kept.append(by_writer[i])
    return entry + kept


def _emit_memop_single(
    e: _Emitter, d: int, ai: int, offset: int, is_store: bool, track_worst: bool,
    lw: int, n1: int, n2: int,
) -> None:
    """One single-line memop: probe, then train, then worst-accumulate."""
    expr = f"addrs[{ai}]" if offset == 0 else f"addrs[{ai}] + {offset}"
    e.emit(d, f"line = {_div_expr(expr, lw)}")
    e.emit(d, "level = 1")
    _emit_l1_probe(e, d, is_store, level_assign=True, n1=n1, count_da=False)
    e.emit(d, "if pf_on:")
    e.emit(d + 1, "hit = level == 1")
    _emit_train(e, d + 1, n1, n2)
    if track_worst:
        e.emit(d, "if level > worst:")
        e.emit(d + 1, "worst = level")


def _emit_memop_multi(
    e: _Emitter, d: int, ai: int, offset: int, nwords: int, is_store: bool,
    track_worst: bool, lw: int, n1: int, n2: int,
) -> None:
    """One multi-line memop: probe every line, then train every line."""
    expr = f"addrs[{ai}]" if offset == 0 else f"addrs[{ai}] + {offset}"
    e.emit(d, f"addr = {expr}")
    e.emit(d, f"line = {_div_expr('addr', lw)}")
    e.emit(d, f"last = {_div_expr(f'addr + {nwords - 1}', lw)}")
    e.emit(d, "level = 1")
    e.emit(d, "while True:")
    _emit_l1_probe(e, d + 1, is_store, level_assign=False, n1=n1)
    e.emit(d + 1, "if line == last:")
    e.emit(d + 2, "break")
    e.emit(d + 1, "line += 1")
    e.emit(d, "if pf_on:")
    e.emit(d + 1, "hit = level == 1")
    e.emit(d + 1, f"line = {_div_expr('addr', lw)}")
    e.emit(d + 1, "while True:")
    _emit_train(e, d + 2, n1, n2)
    e.emit(d + 2, "if line == last:")
    e.emit(d + 3, "break")
    e.emit(d + 2, "line += 1")
    if track_worst:
        e.emit(d, "if level > worst:")
        e.emit(d + 1, "worst = level")


def timing_kernel_source(program: TimingProgram, config: MachineConfig) -> str:
    """Emit the specialized straight-line source for a timing program.

    The function mirrors ``PipelineModel.process_template`` operation for
    operation; everything the interpreted loop resolves per step (slot
    indices, pipe counts, latencies, issue width, miss penalties, memop
    descriptors) is folded into the source as literals.
    """
    live = sorted({s for step in program.steps for s in step[0]}
                  | {s for step in program.steps for s in step[1]})
    pipe_counts = [config.ports[port] for port in program.ports]
    has_mem = any(step[5] in (K_LOAD, K_STORE) for step in program.steps)
    has_load = any(step[5] == K_LOAD for step in program.steps)
    has_store = any(step[5] == K_STORE for step in program.steps)
    has_prfm = any(step[5] == K_PRFM for step in program.steps)
    iw = config.issue_width
    p2 = config.l2_load_latency - config.l1_load_latency
    p3 = config.mem_load_latency - config.l1_load_latency
    # Cache geometry is config-derived and the program pool keys on the
    # config, so line width and set count fold to literals (shift/mask for
    # powers of two); the live probe would demote on any mismatch anyway.
    lw = config.l1.line_bytes // 8
    n1 = config.l1.num_sets
    n2 = config.l2.num_sets
    static_da = 0

    e = _Emitter()
    e.emit(0, "def __kernel(pipe, addrs):")
    e.emit(1, "ready = pipe._ready")
    e.emit(1, "rget = ready.get")
    for s in live:
        e.emit(1, f"s{s} = rget({SCOREBOARD_KEYS[s]!r}, 0)")
    if program.ports:
        e.emit(1, "_ports = pipe._port_free")
    for k, n in enumerate(pipe_counts):
        e.emit(1, f"pl{k} = _ports[PORTS[{k}]]")
        if n == 1:
            e.emit(1, f"p{k} = pl{k}[0]")
    if has_mem or has_prfm:
        e.emit(1, "hierarchy = pipe.hierarchy")
    if has_prfm:
        e.emit(1, "swpf = hierarchy.software_prefetch")
    if has_mem:
        e.emit(1, "access_line_miss = hierarchy._access_line_miss")
        e.emit(1, "l1 = hierarchy.l1")
        e.emit(1, "l1_stats = l1.stats")
        e.emit(1, "l1_sets = l1._sets")
        if has_store:
            e.emit(1, "l1_dirty = l1._dirty")
        e.emit(1, "pf = pipe.prefetcher")
        e.emit(1, "pf_on = pf.enabled and pf.num_streams > 0")
        e.emit(1, "if pf_on:")
        e.emit(2, "pf_streams = pf._streams")
        e.emit(2, "pf_move = pf_streams.move_to_end")
        e.emit(2, "pf_get = pf_streams.get")
        e.emit(2, "pf_max = pf.num_streams")
        e.emit(2, "pf_confirm = pf.confirm_advances")
        e.emit(2, "pf_depth = pf.depth")
        e.emit(2, "l2 = hierarchy.l2")
        e.emit(2, "l2_sets = l2._sets")
        e.emit(2, "watch = hierarchy.static_watch")
        e.emit(2, "fill_l2 = hierarchy._fill_l2")
        e.emit(2, "fill_l1 = hierarchy._fill_l1")
        e.emit(1, "da = 0")
        e.emit(1, "dh = 0")
    if has_load:
        e.emit(1, f"pen = (0, 0, {p2}, {p3})")
    e.emit(1, "t = pipe._frontier")
    e.emit(1, "cycle = pipe._cycle")
    e.emit(1, "issued = pipe._issued_this_cycle")
    e.emit(1, "makespan = pipe.makespan")

    last_writer: Dict[int, int] = {}
    wmin: List[Tuple[bool, int]] = [
        (step[5] != K_LOAD, step[3]) for step in program.steps
    ]
    for j, (dep_slots, write_slots, port_id, latency, ii, kind, memops) in enumerate(
        program.steps
    ):
        deps = _pruned_deps(dep_slots, last_writer, wmin)
        if len(deps) > 3:
            args = ", ".join(f"s{s}" for s in deps)
            e.emit(1, f"t = max(t, {args})")
        else:
            for s in deps:
                e.emit(1, f"if s{s} > t:")
                e.emit(2, f"t = s{s}")
        n = pipe_counts[port_id]
        if n == 1:
            e.emit(1, f"if p{port_id} > t:")
            e.emit(2, f"t = p{port_id}")
        elif n == 2:
            e.emit(1, f"if pl{port_id}[0] <= pl{port_id}[1]:")
            e.emit(2, "pi = 0")
            e.emit(1, "else:")
            e.emit(2, "pi = 1")
            e.emit(1, f"v = pl{port_id}[pi]")
            e.emit(1, "if v > t:")
            e.emit(2, "t = v")
        else:
            e.emit(1, f"pi = min(range({n}), key=pl{port_id}.__getitem__)")
            e.emit(1, f"v = pl{port_id}[pi]")
            e.emit(1, "if v > t:")
            e.emit(2, "t = v")
        e.emit(1, "if t > cycle:")
        e.emit(2, "cycle = t")
        e.emit(2, "issued = 0")
        e.emit(1, f"if issued >= {iw}:")
        e.emit(2, "t = cycle + 1")
        e.emit(2, "cycle = t")
        e.emit(2, "issued = 0")

        if kind == K_PRFM:
            ai, length, wr = memops
            e.emit(1, f"swpf(addrs[{ai}], {length}, write={bool(wr)})")
        elif kind in (K_LOAD, K_STORE):
            is_store = kind == K_STORE
            # A lone memop's level IS the worst level: index the penalty
            # table off it directly instead of round-tripping a max.
            lone = len(memops) == 1
            if not is_store and not lone:
                e.emit(1, "worst = 1")
            if (
                len(memops) > 1
                and all(m[2] == 1 for m in memops)
                and len({m[0] for m in memops}) == 1
            ):
                # Strided gather: every memop is one word off one base
                # address — share the inlined single-line body across a
                # literal offset tuple.
                ai = memops[0][0]
                offs = ", ".join(str(m[1]) for m in memops)
                e.emit(1, f"ab = addrs[{ai}]")
                e.emit(1, f"for ao in ({offs}):")
                e.emit(2, f"line = {_div_expr('ab + ao', lw)}")
                e.emit(2, "level = 1")
                _emit_l1_probe(e, 2, is_store, level_assign=True, n1=n1,
                               count_da=False)
                static_da += len(memops)
                e.emit(2, "if pf_on:")
                e.emit(3, "hit = level == 1")
                _emit_train(e, 3, n1, n2)
                if not is_store:
                    e.emit(2, "if level > worst:")
                    e.emit(3, "worst = level")
            else:
                track = not is_store and not lone
                for ai, offset, nwords in memops:
                    if nwords <= 1:
                        _emit_memop_single(e, 1, ai, offset, is_store, track,
                                           lw, n1, n2)
                        static_da += 1
                    else:
                        _emit_memop_multi(e, 1, ai, offset, nwords, is_store,
                                          track, lw, n1, n2)

        if n == 1:
            e.emit(1, f"p{port_id} = t + {ii}")
        else:
            e.emit(1, f"pl{port_id}[pi] = t + {ii}")
        e.emit(1, "issued += 1")
        if kind == K_LOAD:
            lvl = "level" if lone else "worst"
            e.emit(1, f"done = t + {latency} + pen[{lvl}]")
        elif latency:
            e.emit(1, f"done = t + {latency}")
        else:
            e.emit(1, "done = t")
        for ws in write_slots:
            e.emit(1, f"s{ws} = done")
            last_writer[ws] = j
        e.emit(1, "if done > makespan:")
        e.emit(2, "makespan = done")

    if has_mem:
        if static_da:
            e.emit(1, f"l1_stats.demand_accesses += da + {static_da}")
        else:
            e.emit(1, "l1_stats.demand_accesses += da")
        e.emit(1, "l1_stats.demand_hits += dh")
    for s in live:
        e.emit(1, f"if s{s}:")
        e.emit(2, f"ready[{SCOREBOARD_KEYS[s]!r}] = s{s}")
    for k, n in enumerate(pipe_counts):
        if n == 1:
            e.emit(1, f"pl{k}[0] = p{k}")
    e.emit(1, "pipe._frontier = t")
    e.emit(1, "pipe._cycle = cycle")
    e.emit(1, "pipe._issued_this_cycle = issued")
    e.emit(1, "pipe.makespan = makespan")
    e.emit(1, f"pipe.instructions_retired += {program.count}")
    if program.ports:
        e.emit(1, "bp = pipe.instructions_by_port")
        for k, port in enumerate(program.ports):
            e.emit(1, f"bp[PORTS[{k}]] += {program.port_counts[port]}")
    if program.flops:
        e.emit(1, f"pipe.flops += {program.flops}")
    if program.useful_flops:
        e.emit(1, f"pipe.useful_flops += {program.useful_flops}")
    if program.n_prfm:
        e.emit(1, f"pipe.sw_prefetches += {program.n_prfm}")
    return e.source()


def _timing_namespace(program: TimingProgram) -> Dict:
    return {
        "PORTS": program.ports,
        "_Stream": _Stream,
    }


# -- functional kernel emitter ------------------------------------------------


def functional_kernel_source(program: FunctionalProgram) -> Tuple[str, List[np.ndarray]]:
    """Emit the specialized source for a functional program.

    Returns ``(source, consts)`` where ``consts`` holds the ``F_CONST``
    lane arrays the source references as ``C0, C1, ...`` through its exec
    namespace (ndarray constants cannot be source literals).
    """
    L = SVL_LANES
    ops = program.ops
    codes = {op[0] for op in ops}
    consts: List[np.ndarray] = []
    has_tiles = codes & {F_FMOPA, F_ZERO, F_MOVA_TV, F_MOVA_VT, F_FMLA_M, F_ST_SLICE}
    has_mem = codes & {F_LD, F_LD_TAIL, F_LD_STRIDED, F_ST, F_ST_SLICE}

    e = _Emitter()
    e.emit(0, "def __kernel(engine, addrs):")
    e.emit(1, f"engine.instructions_executed += {program.count}")
    e.emit(1, "v = engine.regs._vregs")
    if has_tiles:
        e.emit(1, "tiles = engine.regs._tiles")
    if has_mem:
        e.emit(1, "mem = engine.memory")
        e.emit(1, "base = mem._BASE")
        e.emit(1, "nxt = mem._next")
    if codes & {F_LD}:
        e.emit(1, "pget = mem._pages.get")
    if codes & {F_ST, F_ST_SLICE}:
        e.emit(1, "page_for = mem._page_for")
        e.emit(1, "mem_write = mem.write")
    if codes & {F_LD, F_LD_TAIL}:
        e.emit(1, "mem_read = mem.read")
    if codes & {F_LD_STRIDED}:
        e.emit(1, "read_strided = mem.read_strided")
    if has_mem:
        e.emit(1, "check_range = mem._check_range")

    for op in ops:
        code = op[0]
        if code == F_FMLA:
            e.emit(1, f"v[{op[1]}] += v[{op[2]}] * v[{op[3]}]")
        elif code == F_FMLA_IDX:
            e.emit(1, f"v[{op[1]}] += v[{op[2]}] * v[{op[3]}][{op[4]}]")
        elif code == F_LD:
            e.emit(1, f"a = addrs[{op[2]}]")
            e.emit(1, f"if a < base or a + {L} > nxt:")
            e.emit(2, f"check_range(a, {L})")
            e.emit(1, f"pid, off = divmod(a, {PAGE_WORDS})")
            e.emit(1, f"if off + {L} <= {PAGE_WORDS}:")
            e.emit(2, "page = pget(pid)")
            e.emit(2, "if page is None:")
            e.emit(3, f"v[{op[1]}] = 0.0")
            e.emit(2, "else:")
            e.emit(3, f"v[{op[1]}] = page[off : off + {L}]")
            e.emit(1, "else:")
            e.emit(2, f"v[{op[1]}] = mem_read(a, {L})")
        elif code == F_EXT:
            imm = op[4]
            if imm == 0:
                e.emit(1, f"v[{op[1]}] = v[{op[2]}]")
            elif imm == L:
                e.emit(1, f"v[{op[1]}] = v[{op[3]}]")
            else:
                e.emit(1, f"out = np.empty({L})")
                e.emit(1, f"out[: {L - imm}] = v[{op[2]}][{imm}:]")
                e.emit(1, f"out[{L - imm} :] = v[{op[3]}][: {imm}]")
                e.emit(1, f"v[{op[1]}] = out")
        elif code == F_FMOPA:
            e.emit(1, f"tiles[{op[1]}] += v[{op[2]}].reshape({L}, 1) * v[{op[3]}]")
        elif code == F_ST:
            mask = op[3]
            e.emit(1, f"a = addrs[{op[2]}]")
            e.emit(1, f"if a < base or a + {mask} > nxt:")
            e.emit(2, f"check_range(a, {mask})")
            e.emit(1, f"pid, off = divmod(a, {PAGE_WORDS})")
            e.emit(1, f"if off + {mask} <= {PAGE_WORDS}:")
            e.emit(2, "page, _ = page_for(a, True)")
            e.emit(2, f"page[off : off + {mask}] = v[{op[1]}][: {mask}]")
            e.emit(1, "else:")
            e.emit(2, f"mem_write(a, v[{op[1]}][: {mask}])")
        elif code == F_ST_SLICE:
            mask = op[4]
            e.emit(1, f"a = addrs[{op[3]}]")
            e.emit(1, f"if a < base or a + {mask} > nxt:")
            e.emit(2, f"check_range(a, {mask})")
            e.emit(1, f"pid, off = divmod(a, {PAGE_WORDS})")
            e.emit(1, f"if off + {mask} <= {PAGE_WORDS}:")
            e.emit(2, "page, _ = page_for(a, True)")
            e.emit(2, f"page[off : off + {mask}] = tiles[{op[1]}, {op[2]}][: {mask}]")
            e.emit(1, "else:")
            e.emit(2, f"mem_write(a, tiles[{op[1]}, {op[2]}][: {mask}])")
        elif code == F_FMUL_IDX:
            e.emit(1, f"v[{op[1]}] = v[{op[2]}] * v[{op[3]}][{op[4]}]")
        elif code == F_FADD:
            e.emit(1, f"v[{op[1]}] = v[{op[2]}] + v[{op[3]}]")
        elif code == F_LD_TAIL:
            mask = op[3]
            e.emit(1, f"row = v[{op[1]}]")
            e.emit(1, f"row[{mask}:] = 0.0")
            e.emit(1, f"row[: {mask}] = mem_read(addrs[{op[2]}], {mask})")
        elif code == F_LD_STRIDED:
            e.emit(1, f"v[{op[1]}] = read_strided(addrs[{op[2]}], {L}, {op[3]})")
        elif code == F_CONST:
            idx = len(consts)
            consts.append(op[2])
            e.emit(1, f"v[{op[1]}] = C{idx}")
        elif code == F_ZERO:
            e.emit(1, f"tiles[{op[1]}] = 0.0")
        elif code == F_MOVA_TV:
            e.emit(1, f"v[{op[1]}] = tiles[{op[2]}, {op[3]}]")
        elif code == F_MOVA_VT:
            e.emit(1, f"tiles[{op[1]}, {op[2]}] = v[{op[3]}]")
        elif code == F_FMLA_M:
            e.emit(1, f"sc = v[{op[3]}][{op[4]}]")
            for g in range(4):
                e.emit(1, f"tiles[{op[1]}, {2 * g}] += v[{op[2] + g}] * sc")
        else:  # pragma: no cover - builder emits only known opcodes
            raise ValueError(f"unknown functional opcode {code}")
    if not ops:
        e.emit(1, "pass")
    return e.source(), consts


def _functional_namespace(consts: Sequence[np.ndarray]) -> Dict:
    namespace: Dict = {"np": np}
    for i, arr in enumerate(consts):
        namespace[f"C{i}"] = arr
    return namespace


# -- columnar chunk-walk emitter ----------------------------------------------


def chunk_walk_source(
    chunk: Tuple, ports: Tuple, config: MachineConfig
) -> str:
    """Emit a specialized ``_scoreboard_walk`` for one columnar chunk.

    Same signature/contract as the interpreted walk minus the constants it
    bakes in (steps, write-out set, issue width, penalties, pipe counts):
    mutates ``slots`` / ``pipes_by_id`` in place and returns the memo entry.
    """
    steps, _live_in, write_out, _port_ids, _lev_lo, _lev_hi = chunk
    pipe_counts = {pid: config.ports[ports[pid]] for pid in
                   sorted({step[2] for step in steps})}
    iw = config.issue_width
    p2 = config.l2_load_latency - config.l1_load_latency
    p3 = config.mem_load_latency - config.l1_load_latency
    has_load = any(step[5] == K_LOAD for step in steps)

    e = _Emitter()
    e.emit(0, "def __chunk(levels, li, f0, cycle, issued, slots, pipes_by_id):")
    static_assigned = sorted(
        (pid, 0) for pid, n in pipe_counts.items() if n == 1
    )
    e.emit(1, f"asg = {{{', '.join(map(repr, static_assigned))}}}"
           if static_assigned else "asg = set()")
    for pid, n in pipe_counts.items():
        e.emit(1, f"pl{pid} = pipes_by_id[{pid}]")
        if n == 1:
            e.emit(1, f"p{pid} = pl{pid}[0]")
    if has_load:
        e.emit(1, f"pen = (0, 0, {p2}, {p3})")
    e.emit(1, "t = f0")
    e.emit(1, "max_done = 0")

    load_no = 0
    last_writer: Dict[int, int] = {}
    wmin: List[Tuple[bool, int]] = [
        (step[5] != K_LOAD, step[3]) for step in steps
    ]
    for j, (dep_slots, write_slots, port_id, latency, ii, kind, _memops) in enumerate(
        steps
    ):
        deps = _pruned_deps(dep_slots, last_writer, wmin)
        if len(deps) > 3:
            args = ", ".join(f"slots[{s}]" for s in deps)
            e.emit(1, f"t = max(t, {args})")
        else:
            for s in deps:
                e.emit(1, f"v = slots[{s}]")
                e.emit(1, "if v > t:")
                e.emit(2, "t = v")
        n = pipe_counts[port_id]
        if n == 1:
            e.emit(1, f"if p{port_id} > t:")
            e.emit(2, f"t = p{port_id}")
        elif n == 2:
            e.emit(1, f"if pl{port_id}[0] <= pl{port_id}[1]:")
            e.emit(2, "pi = 0")
            e.emit(1, "else:")
            e.emit(2, "pi = 1")
            e.emit(1, f"v = pl{port_id}[pi]")
            e.emit(1, "if v > t:")
            e.emit(2, "t = v")
        else:
            e.emit(1, f"pi = min(range({n}), key=pl{port_id}.__getitem__)")
            e.emit(1, f"v = pl{port_id}[pi]")
            e.emit(1, "if v > t:")
            e.emit(2, "t = v")
        e.emit(1, "if t > cycle:")
        e.emit(2, "cycle = t")
        e.emit(2, "issued = 0")
        e.emit(1, f"if issued >= {iw}:")
        e.emit(2, "t = cycle + 1")
        e.emit(2, "cycle = t")
        e.emit(2, "issued = 0")
        if n == 1:
            e.emit(1, f"p{port_id} = t + {ii}")
        else:
            e.emit(1, f"pl{port_id}[pi] = t + {ii}")
            e.emit(1, f"asg.add(({port_id}, pi))")
        e.emit(1, "issued += 1")
        if kind == K_LOAD:
            e.emit(1, f"done = t + {latency} + pen[levels[li + {load_no}]]")
            load_no += 1
        elif latency:
            e.emit(1, f"done = t + {latency}")
        else:
            e.emit(1, "done = t")
        for ws in write_slots:
            e.emit(1, f"slots[{ws}] = done")
            last_writer[ws] = j
        e.emit(1, "if done > max_done:")
        e.emit(2, "max_done = done")

    for pid, n in pipe_counts.items():
        if n == 1:
            e.emit(1, f"pl{pid}[0] = p{pid}")
    if len(write_out) == 1:
        out = f"(({write_out[0]}, slots[{write_out[0]}] - f0),)"
    else:
        out = "(" + ", ".join(
            f"({s}, slots[{s}] - f0)" for s in write_out
        ) + ")"
    e.emit(1, "return (")
    e.emit(2, f"{out},")
    e.emit(2, "tuple((pid, jj, pipes_by_id[pid][jj] - f0)")
    e.emit(2, "      for pid, jj in sorted(asg)),")
    e.emit(2, "t - f0,")
    e.emit(2, "t - cycle,")
    e.emit(2, "issued,")
    e.emit(2, "max_done - f0,")
    e.emit(1, ")")
    return e.source()


def chunk_walk_fn(chunk: Tuple, ports: Tuple, config: MachineConfig):
    """Generate+compile a chunk walk; ``None`` on failure (caller demotes)."""
    try:
        source = chunk_walk_source(chunk, ports, config)
    except Exception:
        CODEGEN_STATS["exec_failed"] += 1
        return None
    fn = _compile_fn(source, {}, name="__chunk", cache_key=("chunk",))
    if fn is None:
        CODEGEN_STATS["exec_failed"] += 1
        return None
    CODEGEN_STATS["chunk_generated"] += 1
    return fn


# -- artifact persistence -----------------------------------------------------


def _codegen_artifact_digest(
    flavor: str, sig_digest: str, config: Optional[MachineConfig]
) -> str:
    inputs = {
        "kind": "codegen",
        "flavor": flavor,
        "meta": artifacts.artifact_meta(),
        "signature": sig_digest,
        "version": CODEGEN_VERSION,
    }
    if config is not None:
        inputs["machine"] = artifacts.machine_digest(config)
    return artifacts.artifact_digest(inputs)


def _state_from_payload(
    data: Dict, flavor: str, content: str, namespace: Dict, cache_key=None
):
    """Rebuild a state from a stored payload; a demoted state on any skew.

    Tampered source (sha mismatch), a stale generator version, or a content
    digest that no longer matches the in-hand program all demote the class
    permanently — a wrong kernel must never run, and the interpreted program
    is always available.  A clean load still starts unverified: the first
    live use pays the one-emit probe exactly like a fresh generation.
    """
    try:
        ok = (
            data.get("version") == CODEGEN_VERSION
            and data.get("flavor") == flavor
            and isinstance(data.get("source"), str)
            and data.get("sha256") == _sha256(data["source"])
            and data.get("content") == content
        )
    except Exception:
        ok = False
    if not ok:
        state = CodegenState(demoted=True)
        CODEGEN_STATS["demoted"] += 1
        return state
    fn = _compile_fn(data["source"], namespace, cache_key=cache_key)
    if fn is None:
        CODEGEN_STATS["exec_failed"] += 1
        state = CodegenState(demoted=True)
        CODEGEN_STATS["demoted"] += 1
        return state
    CODEGEN_STATS["loaded"] += 1
    return CodegenState(fn=fn, source=data["source"])


def _install(
    program,
    flavor: str,
    content: str,
    source_fn,
    namespace: Dict,
    config: Optional[MachineConfig],
    cache_key=None,
) -> CodegenState:
    sig_digest = program.sig_digest
    store = artifacts.active_store()
    digest = None
    if store is not None and sig_digest is not None:
        digest = _codegen_artifact_digest(flavor, sig_digest, config)
        data = store.load("codegen", digest)
        if data is not None:
            state = _state_from_payload(data, flavor, content, namespace, cache_key)
            program.codegen = state
            return state
    try:
        source = source_fn()
        fn = _compile_fn(source, namespace, cache_key=cache_key)
    except Exception:
        fn = None
        source = None
    if fn is None:
        CODEGEN_STATS["exec_failed"] += 1
        state = CodegenState(demoted=True)
        CODEGEN_STATS["demoted"] += 1
        program.codegen = state
        return state
    state = CodegenState(fn=fn, source=source)
    CODEGEN_STATS["generated"] += 1
    program.codegen = state
    if store is not None and digest is not None:
        payload = {
            "version": CODEGEN_VERSION,
            "flavor": flavor,
            "source": source,
            "sha256": _sha256(source),
            "content": content,
        }
        if store.store(
            "codegen", digest, payload,
            inputs={"flavor": flavor, "signature": sig_digest, "content": content},
        ):
            CODEGEN_STATS["store_writes"] += 1
    return state


def install_timing(program: TimingProgram, config: MachineConfig) -> CodegenState:
    """Generate (or store-load) the timing kernel for a program."""
    state = program.codegen
    if state is not None:
        return state
    content = _content_digest(timing_program_to_payload(program))
    return _install(
        program,
        "timing",
        content,
        lambda: timing_kernel_source(program, config),
        _timing_namespace(program),
        config,
        cache_key=("timing", tuple(program.ports)),
    )


def install_functional(program: FunctionalProgram) -> CodegenState:
    """Generate (or store-load) the functional kernel for a program."""
    state = program.codegen
    if state is not None:
        return state
    content = _content_digest(functional_program_to_payload(program))

    def build() -> str:
        source, _ = functional_kernel_source(program)
        return source

    # The namespace needs the F_CONST arrays, which only exist after the
    # source is emitted; recover them for the store-load path directly from
    # the program (op order is deterministic, so the Ci numbering matches).
    consts = [op[2] for op in program.ops if op[0] == F_CONST]
    return _install(
        program,
        "functional",
        content,
        build,
        _functional_namespace(consts),
        None,
        cache_key=("functional", tuple(arr.tobytes() for arr in consts)),
    )


# -- probe verification -------------------------------------------------------


def _pipes_match(clone, pipe) -> bool:
    """Full structural pipe-state comparison (mirror of the columnar probe).

    Both sides start from identical absolute state and process the same
    block, so a correct kernel leaves *identical* absolute state — raw
    structure comparison is stricter and cheaper than normalized
    signatures.  Stream-table order matters (LRU eviction).
    """
    ch, ph = clone.hierarchy, pipe.hierarchy
    cf, pf = clone.prefetcher, pipe.prefetcher
    return (
        clone._frontier == pipe._frontier
        and clone._cycle == pipe._cycle
        and clone._issued_this_cycle == pipe._issued_this_cycle
        and clone.makespan == pipe.makespan
        and clone._port_free == pipe._port_free
        and clone._ready == pipe._ready
        and clone.instructions_retired == pipe.instructions_retired
        and clone.instructions_by_port == pipe.instructions_by_port
        and clone.flops == pipe.flops
        and clone.useful_flops == pipe.useful_flops
        and clone.sw_prefetches == pipe.sw_prefetches
        and ch.mem_lines_read == ph.mem_lines_read
        and ch.mem_lines_written == ph.mem_lines_written
        and ch.l1._tick == ph.l1._tick
        and ch.l1._sets == ph.l1._sets
        and ch.l1._dirty == ph.l1._dirty
        and ch.l1.stats == ph.l1.stats
        and ch.l2._tick == ph.l2._tick
        and ch.l2._sets == ph.l2._sets
        and ch.l2._dirty == ph.l2._dirty
        and ch.l2.stats == ph.l2.stats
        and list(cf._streams.items()) == list(pf._streams.items())
        and cf.prefetches_issued == pf.prefetches_issued
        and cf.streams_confirmed == pf.streams_confirmed
        and cf.streams_allocated == pf.streams_allocated
    )


def probe_timing(state: CodegenState, pipe, program: TimingProgram, addrs) -> None:
    """One-live-emit probe: generated on a clone, interpreted on the real pipe.

    The interpreted (trusted) result is in place whichever way the
    comparison goes; a match flips ``verified``, anything else demotes the
    class permanently.
    """
    clone = pipe.clone()
    failed = False
    try:
        state.fn(clone, addrs)
    except Exception:
        failed = True
    pipe.process_template_interp(program, addrs)
    if not failed and _pipes_match(clone, pipe):
        state.verified = True
        CODEGEN_STATS["verified"] += 1
    else:
        if failed:
            CODEGEN_STATS["exec_failed"] += 1
        state.demote()


def _store_page_ids(program: FunctionalProgram, addrs) -> set:
    """Memory pages the program's stores can touch with these addresses."""
    pids: set = set()
    for op in program.ops:
        code = op[0]
        if code == F_ST:
            addr, n = addrs[op[2]], op[3]
        elif code == F_ST_SLICE:
            addr, n = addrs[op[3]], op[4]
        else:
            continue
        pids.update(range(addr // PAGE_WORDS, (addr + n - 1) // PAGE_WORDS + 1))
    return pids


def probe_functional(state: CodegenState, engine, program: FunctionalProgram, addrs) -> None:
    """Snapshot/run-generated/restore/run-interpreted probe for one block.

    Register files are tiny and copied whole; memory is snapshotted only on
    the pages the program's stores can touch (loads never create or mutate
    pages).  The interpreted replay runs last on the restored state, so its
    trusted result stands; comparison is bit-exact (``tobytes``).
    """
    regs = engine.regs
    pages = engine.memory._pages
    pids = _store_page_ids(program, addrs)
    snap_v = regs._vregs.copy()
    snap_t = regs._tiles.copy()
    snap_n = engine.instructions_executed
    snap_pages = {}
    for pid in pids:
        page = pages.get(pid)
        snap_pages[pid] = None if page is None else page.copy()

    failed = False
    try:
        state.fn(engine, addrs)
    except Exception:
        failed = True
    got_v = regs._vregs.copy()
    got_t = regs._tiles.copy()
    got_n = engine.instructions_executed
    got_pages = {}
    for pid in pids:
        page = pages.get(pid)
        got_pages[pid] = None if page is None else page.copy()

    # Restore, then produce the trusted result in place.
    regs._vregs[:] = snap_v
    regs._tiles[:] = snap_t
    engine.instructions_executed = snap_n
    for pid, page in snap_pages.items():
        if page is None:
            pages.pop(pid, None)
        else:
            pages[pid] = page
    engine.execute_template_interp(program, addrs)

    ok = (
        not failed
        and got_n == engine.instructions_executed
        and got_v.tobytes() == regs._vregs.tobytes()
        and got_t.tobytes() == regs._tiles.tobytes()
    )
    if ok:
        for pid in pids:
            ref = pages.get(pid)
            got = got_pages[pid]
            if (ref is None) != (got is None) or (
                ref is not None and ref.tobytes() != got.tobytes()
            ):
                ok = False
                break
    if ok:
        state.verified = True
        CODEGEN_STATS["verified"] += 1
    else:
        if failed:
            CODEGEN_STATS["exec_failed"] += 1
        state.demote()
