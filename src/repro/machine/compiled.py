"""Precompiled per-template programs for the trace-replay fast path.

The compiled engine exploits the loop-body regularity of stencil kernels
(the same regularity the vectorization literature leans on): every block of
a given *shape class* emits a structurally identical instruction stream in
which only the word addresses differ.  This module turns one representative
trace into two flat programs that can be replayed per block with nothing
but a rebased address array:

* :class:`TimingProgram` — the static per-instruction metadata the
  scoreboard walk needs (dependence keys from ``reads()``/``writes()``,
  port class, latency spec, memory-op descriptors, flop counts) resolved
  once into parallel step tuples, so the replay loop performs no method
  dispatch, no ``latency_for`` lookup and no dependence-tuple construction.
* :class:`FunctionalProgram` — the architectural semantics lowered to
  small integer opcodes over direct register-file indices, so replay runs
  without per-instruction ``isinstance`` chains or defensive copies.

Both builders are *total* over the instruction set the kernels emit and
return ``None`` for anything else (unknown instruction types, ports with
no pipes, missing latency entries); the caller then falls back to the
reference object walk, which raises the canonical errors.  Address fields
are described by :data:`ADDR_FIELDS`; :func:`trace_signature` masks them
out so the template layer can check structural equality across blocks,
and :func:`trace_addresses` extracts them in program order (the order the
rebased address array uses).

Bit-identity is the design contract: a compiled program replayed through
``PipelineModel.process_template`` / ``FunctionalEngine.execute_template``
performs the same cache, prefetcher and scoreboard operations in the same
order as the reference walk over the original instruction objects.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import fields as _dataclass_fields
from operator import attrgetter as _attrgetter
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.instructions import (
    DUP,
    EXT,
    FADD_V,
    FMLA,
    FMLA_IDX,
    FMLA_M,
    FMOPA,
    FMUL_IDX,
    Instruction,
    LD1D,
    LD1D_STRIDED,
    MOVA_TILE_TO_VEC,
    MOVA_VEC_TO_TILE,
    PRFM,
    PortClass,
    SCALAR_OP,
    SET_LANES,
    ST1D,
    ST1D_SLICE,
    ZERO_TILE,
)
from repro.isa.registers import NUM_TILES, NUM_VREGS, SVL_LANES
from repro.machine import artifacts
from repro.machine.config import MachineConfig

# -- scoreboard slot universe ------------------------------------------------

#: Every scoreboard key the ISA can produce, in canonical order: vector
#: registers by name, then tile slices by (tile, row).  The compiled walk
#: keeps readiness in a flat list indexed by slot instead of the reference
#: walk's dict (tuple keys hash on every probe); the two are synchronized
#: at replay boundaries.
SCOREBOARD_KEYS: Tuple = tuple(f"z{i}" for i in range(NUM_VREGS)) + tuple(
    (f"za{t}", r) for t in range(NUM_TILES) for r in range(SVL_LANES)
)
SLOT_OF: Dict[object, int] = {key: i for i, key in enumerate(SCOREBOARD_KEYS)}
N_SLOTS = len(SCOREBOARD_KEYS)

# -- address/structure description -------------------------------------------

#: Word-address fields per instruction type.  These are the only fields a
#: template allows to vary between blocks of one shape class; the replay
#: driver rebases them per block.  Every other field must match exactly.
ADDR_FIELDS: Dict[type, Tuple[str, ...]] = {
    LD1D: ("addr",),
    LD1D_STRIDED: ("addr",),
    ST1D: ("addr",),
    ST1D_SLICE: ("addr",),
    PRFM: ("addr",),
}

#: Exact instruction types both program builders know how to lower.  An
#: instruction of any other type makes the whole trace non-compilable.
COMPILABLE_TYPES = frozenset(
    {
        LD1D,
        LD1D_STRIDED,
        ST1D,
        ST1D_SLICE,
        PRFM,
        FMLA,
        FMLA_IDX,
        FMUL_IDX,
        FADD_V,
        EXT,
        DUP,
        SET_LANES,
        FMOPA,
        ZERO_TILE,
        MOVA_TILE_TO_VEC,
        MOVA_VEC_TO_TILE,
        FMLA_M,
        SCALAR_OP,
    }
)

#: Per-class C-level getter for all non-address fields (signature probes
#: run over every instruction of every probe emit, so this is hot).
_SIG_GETTERS: Dict[type, object] = {}


def _sig_getter(cls: type):
    getter = _SIG_GETTERS.get(cls)
    if getter is None:
        addr_fields = ADDR_FIELDS.get(cls, ())
        names = [f.name for f in _dataclass_fields(cls) if f.name not in addr_fields]
        if not names:
            getter = lambda ins: ()  # noqa: E731 — address-only instruction
        elif len(names) == 1:
            only = names[0]
            getter = _attrgetter(only)
        else:
            getter = _attrgetter(*names)
        _SIG_GETTERS[cls] = getter
    return getter


def instruction_signature(ins: Instruction) -> Tuple:
    """Structural identity of one instruction with address fields masked."""
    cls = type(ins)
    return (cls, _sig_getter(cls)(ins))


def trace_signature(trace: Sequence[Instruction]) -> Tuple:
    """Structural identity of a whole trace (addresses masked out)."""
    getters = _SIG_GETTERS
    out = []
    for ins in trace:
        cls = type(ins)
        getter = getters.get(cls)
        if getter is None:
            getter = _sig_getter(cls)
        out.append((cls, getter(ins)))
    return tuple(out)


def trace_addresses(trace: Sequence[Instruction]) -> List[int]:
    """All word addresses of a trace, in program order.

    The returned list is the address vector a template's affine model is
    fitted over; replay passes a rebased copy of it to the engines.
    """
    addrs: List[int] = []
    for ins in trace:
        for name in ADDR_FIELDS.get(type(ins), ()):
            addrs.append(getattr(ins, name))
    return addrs


# -- timing program ----------------------------------------------------------

#: Memory-behaviour kinds of a timing step.
K_NONE, K_LOAD, K_STORE, K_PRFM = 0, 1, 2, 3


class TimingProgram:
    """Flattened scoreboard walk for one template trace.

    ``steps`` holds one tuple per instruction::

        (dep_slots, write_slots, port_id, latency, initiation_interval,
         kind, memops)

    ``dep_slots`` covers ``reads() + writes()`` (the issue-cycle max is
    commutative, so the two scans of the reference walk collapse into
    one) as indices into :data:`SCOREBOARD_KEYS`; ``port_id`` indexes the
    program's ``ports`` tuple; ``memops`` rebases through the per-block
    address array: ``(addr_index, word_offset, nwords)`` triples for
    loads/stores, a single ``(addr_index, length, write)`` triple for a
    software prefetch.  The aggregate counters are applied in bulk after
    a replay.
    """

    __slots__ = (
        "steps",
        "count",
        "ports",
        "port_counts",
        "flops",
        "useful_flops",
        "n_prfm",
        "n_addrs",
        "plan_payload",
        "codegen",
        "sig_digest",
        "_dep_union",
        "_write_union",
    )

    def __init__(
        self,
        steps: Tuple,
        ports: Tuple,
        port_counts: Counter,
        flops: int,
        useful_flops: int,
        n_prfm: int,
        n_addrs: int,
    ) -> None:
        self.steps = steps
        self.count = len(steps)
        self.ports = ports
        self.port_counts = port_counts
        self.flops = flops
        self.useful_flops = useful_flops
        self.n_prfm = n_prfm
        self.n_addrs = n_addrs
        #: Serialized columnar plan riding along with a store-loaded program
        #: (see :mod:`repro.machine.columnar`); ``None`` on live builds.
        self.plan_payload = None
        #: Lazily-installed :class:`~repro.machine.codegen.CodegenState`
        #: and the signature digest the pool stashes so codegen artifacts
        #: key identically to the program's own store entry.
        self.codegen = None
        self.sig_digest: Optional[str] = None
        self._dep_union: Optional[Tuple[int, ...]] = None
        self._write_union: Optional[Tuple[int, ...]] = None

    def dep_union(self) -> Tuple[int, ...]:
        """Sorted union of every step's dependence slots (cached).

        These are the only scoreboard slots whose entry values the walk can
        ever read — the live-in set both memoization layers key on.
        """
        if self._dep_union is None:
            union: set = set()
            for step in self.steps:
                union.update(step[0])
            self._dep_union = tuple(sorted(union))
        return self._dep_union

    def write_union(self) -> Tuple[int, ...]:
        """Sorted union of every step's write slots (cached)."""
        if self._write_union is None:
            union: set = set()
            for step in self.steps:
                union.update(step[1])
            self._write_union = tuple(sorted(union))
        return self._write_union


#: Config-independent static step data per instruction *signature*:
#: ``(port, mnemonic, dep_slots, write_slots, flops, useful_flops)``, or
#: ``False`` for signatures whose dependence keys fall outside the
#: canonical slot universe.  Dependence keys, ports and flop counts are
#: functions of the non-address fields only, so sharing across traces,
#: templates and kernels is exact.
_STATIC_STEPS: Dict[Tuple, object] = {}


def _static_step(ins: Instruction, sig: Tuple):
    slot_of = SLOT_OF
    try:
        dep_slots = tuple(slot_of[k] for k in ins.reads() + ins.writes())
        write_slots = tuple(slot_of[k] for k in ins.writes())
    except KeyError:
        _STATIC_STEPS[sig] = False  # key outside the canonical universe
        return False
    static = (ins.port, ins.mnemonic, dep_slots, write_slots, ins.flops, ins.useful_flops)
    _STATIC_STEPS[sig] = static
    return static


def build_timing_program(
    trace: Sequence[Instruction], config: MachineConfig
) -> Optional[TimingProgram]:
    """Lower a trace to a :class:`TimingProgram`; ``None`` if not possible.

    A ``None`` return sends the caller to the reference walk, which raises
    the canonical errors for missing latencies / pipes itself.
    """
    latencies = config.latencies
    ports = config.ports
    static_cache = _STATIC_STEPS
    sig_getters = _SIG_GETTERS
    steps: List[Tuple] = []
    ports_used: List = []
    port_ids: Dict = {}
    port_counts: Counter = Counter()
    flops = 0
    useful_flops = 0
    n_prfm = 0
    addr_idx = 0
    for ins in trace:
        cls = type(ins)
        if cls not in COMPILABLE_TYPES:
            return None
        getter = sig_getters.get(cls)
        if getter is None:
            getter = _sig_getter(cls)
        sig = (cls, getter(ins))
        static = static_cache.get(sig)
        if static is None:
            static = _static_step(ins, sig)
        if static is False:
            return None
        port, mnemonic, dep_slots, write_slots, ins_flops, ins_useful = static
        spec = latencies.get(mnemonic)
        if spec is None:
            return None
        if ports.get(port, 0) < 1:
            return None
        port_id = port_ids.get(port)
        if port_id is None:
            port_id = len(ports_used)
            port_ids[port] = port_id
            ports_used.append(port)
        if cls is LD1D:
            kind = K_LOAD
            memops: Tuple = ((addr_idx, 0, ins.mask),)
            addr_idx += 1
        elif cls is LD1D_STRIDED:
            kind = K_LOAD
            stride = ins.stride
            memops = tuple((addr_idx, k * stride, 1) for k in range(SVL_LANES))
            addr_idx += 1
        elif cls is ST1D or cls is ST1D_SLICE:
            kind = K_STORE
            memops = ((addr_idx, 0, ins.mask),)
            addr_idx += 1
        elif cls is PRFM:
            kind = K_PRFM
            memops = (addr_idx, ins.length, ins.write)
            addr_idx += 1
            n_prfm += 1
        else:
            kind = K_NONE
            memops = ()
        steps.append(
            (
                dep_slots,
                write_slots,
                port_id,
                spec.latency,
                spec.initiation_interval,
                kind,
                memops,
            )
        )
        port_counts[port] += 1
        flops += ins_flops
        useful_flops += ins_useful
    return TimingProgram(
        tuple(steps), tuple(ports_used), port_counts, flops, useful_flops, n_prfm, addr_idx
    )


# -- program serialization (artifact store payloads) -------------------------


def timing_program_to_payload(program: TimingProgram) -> Dict:
    """JSON-safe rendering of a :class:`TimingProgram`.

    Steps contain only ints, tuples of ints, bools and :class:`PortClass`
    members, all of which JSON round-trips exactly, so a deserialized
    program replays bit-identically to the live build it came from.
    """
    steps = []
    for dep_slots, write_slots, port_id, latency, ii, kind, memops in program.steps:
        if kind == K_PRFM:
            mem = [memops[0], memops[1], bool(memops[2])]
        else:
            mem = [list(m) for m in memops]
        steps.append([list(dep_slots), list(write_slots), port_id, latency, ii, kind, mem])
    return {
        "steps": steps,
        "ports": [port.name for port in program.ports],
        "port_counts": {port.name: n for port, n in program.port_counts.items()},
        "flops": program.flops,
        "useful_flops": program.useful_flops,
        "n_prfm": program.n_prfm,
        "n_addrs": program.n_addrs,
    }


def timing_program_from_payload(data: Dict) -> Optional[TimingProgram]:
    """Rebuild a :class:`TimingProgram`; ``None`` on any malformation."""
    try:
        steps = []
        for dep_slots, write_slots, port_id, latency, ii, kind, mem in data["steps"]:
            if kind == K_PRFM:
                memops: Tuple = (mem[0], mem[1], bool(mem[2]))
            else:
                memops = tuple(tuple(m) for m in mem)
            steps.append(
                (tuple(dep_slots), tuple(write_slots), port_id, latency, ii, kind, memops)
            )
        ports = tuple(PortClass[name] for name in data["ports"])
        port_counts: Counter = Counter(
            {PortClass[name]: n for name, n in data["port_counts"].items()}
        )
        return TimingProgram(
            tuple(steps),
            ports,
            port_counts,
            data["flops"],
            data["useful_flops"],
            data["n_prfm"],
            data["n_addrs"],
        )
    except (KeyError, TypeError, ValueError, IndexError):
        return None


def _timing_artifact_digest(config: MachineConfig, sig_digest: str) -> str:
    return artifacts.artifact_digest(
        {
            "kind": "timing",
            "meta": artifacts.artifact_meta(),
            "machine": artifacts.machine_digest(config),
            "signature": sig_digest,
        }
    )


def _functional_artifact_digest(sig_digest: str) -> str:
    return artifacts.artifact_digest(
        {
            "kind": "functional",
            "meta": artifacts.artifact_meta(),
            "signature": sig_digest,
        }
    )


# -- the program pool ---------------------------------------------------------

#: Default in-process pool capacity.  A full registry × {LX2, M4} × fig12
#: sweep produces well under a hundred distinct (config, signature) pairs,
#: so this bounds pathological callers (many throwaway configs) without
#: ever evicting during a normal sweep.
DEFAULT_POOL_CAPACITY = 256


class ProgramPool:
    """LRU pool of timing programs keyed by (config identity, signature).

    Every field of a :class:`TimingProgram` derives from the instructions'
    non-address fields (exactly what :func:`trace_signature` captures) plus
    the machine's latency/port tables, so two traces with equal signatures
    lower to interchangeable programs under the same config — templates of
    different kernels (multicore slice heights in particular) can then share
    one program object, and with it every plan/memo layer keyed on program
    identity.  Entries keep a strong reference to the config so a dead
    config's ``id()`` can never be recycled into a stale hit; the explicit
    capacity bounds that retention (oldest entries — configs included — are
    evicted LRU-first instead of living for the process lifetime).

    On an in-process miss the pool falls through to the process-wide
    :class:`~repro.machine.artifacts.ArtifactStore` (when one is active)
    before lowering live; live builds are written back so later processes
    skip the build entirely.
    """

    def __init__(self, capacity: int = DEFAULT_POOL_CAPACITY) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, Tuple[MachineConfig, Optional[TimingProgram]]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.evictions = 0
        self.store_hits = 0
        self.store_writes = 0
        self.functional_builds = 0
        self.functional_store_hits = 0
        self.build_seconds = 0.0

    def lookup(
        self,
        trace: Sequence[Instruction],
        signature: Tuple,
        config: MachineConfig,
        sig_digest: Optional[str] = None,
    ) -> Optional[TimingProgram]:
        key = (id(config), signature)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry[1]
        self.misses += 1
        store = artifacts.active_store()
        program: Optional[TimingProgram] = None
        digest: Optional[str] = None
        if store is not None:
            if sig_digest is None:
                sig_digest = artifacts.signature_digest(signature)
            digest = _timing_artifact_digest(config, sig_digest)
            data = store.load("timing", digest)
            if data is not None:
                program = timing_program_from_payload(data)
                if program is not None:
                    program.plan_payload = data.get("plan")
                    self.store_hits += 1
        built = program is None
        if built:
            start = perf_counter()
            program = build_timing_program(trace, config)
            self.build_seconds += perf_counter() - start
            self.builds += 1
        if program is not None and sig_digest is not None:
            program.sig_digest = sig_digest
        self._entries[key] = (config, program)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        if built and store is not None and program is not None:
            payload = timing_program_to_payload(program)
            # Ship the columnar Phase-M plan alongside the program so warm
            # processes skip plan construction too.  Imported lazily — the
            # columnar module sits above this one in the import graph.
            from repro.machine.columnar import plan_payload_for

            payload["plan"] = plan_payload_for(program)
            if store.store(
                "timing",
                digest,
                payload,
                inputs={
                    "machine": artifacts.machine_digest(config),
                    "signature": sig_digest,
                },
            ):
                self.store_writes += 1
        return program

    def clear(self, reset_stats: bool = False) -> None:
        self._entries.clear()
        if reset_stats:
            self.hits = self.misses = self.builds = self.evictions = 0
            self.store_hits = self.store_writes = 0
            self.functional_builds = self.functional_store_hits = 0
            self.build_seconds = 0.0

    def stats(self) -> Dict:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "build_seconds": self.build_seconds,
            "evictions": self.evictions,
            "store_hits": self.store_hits,
            "store_writes": self.store_writes,
            "functional_builds": self.functional_builds,
            "functional_store_hits": self.functional_store_hits,
        }


_POOL = ProgramPool()


def pooled_timing_program(
    trace: Sequence[Instruction],
    signature: Tuple,
    config: MachineConfig,
    sig_digest: Optional[str] = None,
) -> Optional[TimingProgram]:
    """Build (or reuse) the timing program for a trace with known signature."""
    return _POOL.lookup(trace, signature, config, sig_digest)


def pooled_functional_program(
    trace: Sequence[Instruction], sig_digest: Optional[str] = None
) -> Optional["FunctionalProgram"]:
    """Build a functional program, going through the artifact store.

    Functional programs are config-independent, so the artifact digest
    covers only the trace signature (plus the shared meta block).  Without
    an active store or a signature digest this is a plain live build.
    """
    store = artifacts.active_store()
    digest: Optional[str] = None
    if store is not None and sig_digest is not None:
        digest = _functional_artifact_digest(sig_digest)
        data = store.load("functional", digest)
        if data is not None:
            program = functional_program_from_payload(data)
            if program is not None:
                program.sig_digest = sig_digest
                _POOL.functional_store_hits += 1
                return program
    start = perf_counter()
    program = build_functional_program(trace)
    _POOL.build_seconds += perf_counter() - start
    _POOL.functional_builds += 1
    if program is not None:
        program.sig_digest = sig_digest
    if store is not None and digest is not None and program is not None:
        store.store(
            "functional",
            digest,
            functional_program_to_payload(program),
            inputs={"signature": sig_digest},
        )
    return program


def program_pool_stats() -> Dict:
    """Hit/miss/build/eviction counters of the shared program pool."""
    return _POOL.stats()


def clear_program_pool(reset_stats: bool = False) -> None:
    """Drop the shared program pool (tests / memory hygiene)."""
    _POOL.clear(reset_stats=reset_stats)


# -- functional program ------------------------------------------------------

#: Functional opcodes (PRFM and SCALAR_OP have no architectural effect and
#: emit no op; the program's ``count`` still covers them).
(
    F_LD,
    F_LD_TAIL,
    F_LD_STRIDED,
    F_ST,
    F_ST_SLICE,
    F_FMLA,
    F_FMLA_IDX,
    F_FMUL_IDX,
    F_FADD,
    F_EXT,
    F_CONST,
    F_FMOPA,
    F_ZERO,
    F_MOVA_TV,
    F_MOVA_VT,
    F_FMLA_M,
) = range(16)


class FunctionalProgram:
    """Architectural semantics of one template trace, as flat opcodes.

    Each op is a tuple with an integer opcode first and direct register
    indices (into ``RegisterFile._vregs`` / ``_tiles``) after it; memory
    operands reference the per-block rebased address array by index.
    """

    __slots__ = ("ops", "count", "n_addrs", "codegen", "sig_digest")

    def __init__(self, ops: Tuple, count: int, n_addrs: int) -> None:
        self.ops = ops
        self.count = count
        self.n_addrs = n_addrs
        self.codegen = None
        self.sig_digest: Optional[str] = None


def build_functional_program(trace: Sequence[Instruction]) -> Optional[FunctionalProgram]:
    """Lower a trace to a :class:`FunctionalProgram`; ``None`` if not possible."""
    ops: List[Tuple] = []
    addr_idx = 0
    for ins in trace:
        cls = type(ins)
        if cls not in COMPILABLE_TYPES:
            return None
        if cls is LD1D:
            if ins.mask == SVL_LANES:
                ops.append((F_LD, ins.dst.index, addr_idx))
            else:
                ops.append((F_LD_TAIL, ins.dst.index, addr_idx, ins.mask))
            addr_idx += 1
        elif cls is LD1D_STRIDED:
            ops.append((F_LD_STRIDED, ins.dst.index, addr_idx, ins.stride))
            addr_idx += 1
        elif cls is ST1D:
            ops.append((F_ST, ins.src.index, addr_idx, ins.mask))
            addr_idx += 1
        elif cls is ST1D_SLICE:
            ops.append((F_ST_SLICE, ins.tile.index, ins.row, addr_idx, ins.mask))
            addr_idx += 1
        elif cls is PRFM:
            addr_idx += 1  # cache hint only; no architectural effect
        elif cls is FMLA:
            ops.append((F_FMLA, ins.dst.index, ins.a.index, ins.b.index))
        elif cls is FMLA_IDX:
            ops.append((F_FMLA_IDX, ins.dst.index, ins.a.index, ins.b.index, ins.idx))
        elif cls is FMUL_IDX:
            ops.append((F_FMUL_IDX, ins.dst.index, ins.a.index, ins.b.index, ins.idx))
        elif cls is FADD_V:
            ops.append((F_FADD, ins.dst.index, ins.a.index, ins.b.index))
        elif cls is EXT:
            ops.append((F_EXT, ins.dst.index, ins.a.index, ins.b.index, ins.imm))
        elif cls is DUP:
            ops.append((F_CONST, ins.dst.index, np.full(SVL_LANES, float(ins.value))))
        elif cls is SET_LANES:
            ops.append((F_CONST, ins.dst.index, np.array(ins.values, dtype=np.float64)))
        elif cls is FMOPA:
            ops.append((F_FMOPA, ins.tile.index, ins.coef.index, ins.src.index))
        elif cls is ZERO_TILE:
            ops.append((F_ZERO, ins.tile.index))
        elif cls is MOVA_TILE_TO_VEC:
            ops.append((F_MOVA_TV, ins.dst.index, ins.tile.index, ins.row))
        elif cls is MOVA_VEC_TO_TILE:
            ops.append((F_MOVA_VT, ins.tile.index, ins.row, ins.src.index))
        elif cls is FMLA_M:
            ops.append((F_FMLA_M, ins.tile.index, ins.a_base.index, ins.b.index, ins.idx))
        # SCALAR_OP: no architectural effect, no op.
    return FunctionalProgram(tuple(ops), len(trace), addr_idx)


def functional_program_to_payload(program: FunctionalProgram) -> Dict:
    """JSON-safe rendering of a :class:`FunctionalProgram`.

    The only non-integer operand is the ``F_CONST`` lane array; JSON float
    ``repr`` round-trips doubles exactly, so the constants stay bit-exact.
    """
    ops = []
    for op in program.ops:
        if op[0] == F_CONST:
            ops.append([F_CONST, op[1], ["v", op[2].tolist()]])
        else:
            ops.append(list(op))
    return {"ops": ops, "count": program.count, "n_addrs": program.n_addrs}


def functional_program_from_payload(data: Dict) -> Optional[FunctionalProgram]:
    """Rebuild a :class:`FunctionalProgram`; ``None`` on any malformation."""
    try:
        ops: List[Tuple] = []
        for op in data["ops"]:
            if op[0] == F_CONST:
                ops.append((F_CONST, op[1], np.array(op[2][1], dtype=np.float64)))
            else:
                ops.append(tuple(op))
        return FunctionalProgram(tuple(ops), data["count"], data["n_addrs"])
    except (KeyError, TypeError, ValueError, IndexError):
        return None
