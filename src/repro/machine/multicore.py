"""Multicore strong-scaling model (Figure 16).

OpenMP-style row partitioning inside one NUMA node: the grid is split into
``P`` horizontal slices, each core runs the same kernel on its slice with
private L1/L2, and all cores share the socket's DRAM bandwidth.  Because the
slices are statistically identical, one slice is simulated (band-sampled)
and the socket-level result follows from a bandwidth-contention bound:

* unconstrained, all cores finish in the single-core slice time ``C``;
* the aggregate DRAM demand is ``P * D`` bytes over those ``C`` cycles; if
  that exceeds the socket bandwidth ``B`` bytes/cycle, execution stretches
  to ``P * D / B`` cycles.

``T = max(C, P*D/B)`` — compute-bound at low core counts, bandwidth-bound
at high ones.  Methods with better cache behaviour (HStencil with spatial
prefetch keeps more traffic in L1/L2) have smaller ``D`` and therefore a
higher scaling ceiling, which is exactly the separation Figure 16 shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.isa.program import Kernel
from repro.machine.config import MachineConfig
from repro.machine.perf import PerfCounters
from repro.machine.timing import SamplePlan, TimingEngine


@dataclass
class ScalingPoint:
    """One core-count measurement of the strong-scaling curve."""

    cores: int
    cycles: float
    points: int
    gstencil_per_s: float
    bandwidth_bound: bool
    dram_bytes_per_core: float
    single_core_cycles: float
    #: Cycles/points of the true ``cores == 1`` (full-grid) measurement.
    #: Filled in by :meth:`MulticoreModel.strong_scaling` /
    #: :meth:`MulticoreModel.series_from_slices`; zero for a bare
    #: :meth:`MulticoreModel.scaling_point` call.
    serial_cycles: float = 0.0
    serial_points: int = 0
    #: ``total_rows % cores`` rows that the equal-slice partition leaves
    #: unassigned (no core computes them).
    remainder_rows: int = 0

    @property
    def speedup_vs_serial(self) -> float:
        """Throughput relative to the true 1-core point of the sweep.

        With the serial reference filled in, this is the strong-scaling
        speedup the paper plots: per-point throughput of this point over
        per-point throughput of the full grid on one core.  Without it
        (a bare :meth:`MulticoreModel.scaling_point`), it falls back to the
        same-slice ratio, which only deviates from 1.0 when the point is
        bandwidth-bound.
        """
        if not self.cycles:
            return 0.0
        if self.serial_cycles and self.serial_points and self.points:
            serial_throughput = self.serial_points / self.serial_cycles
            return (self.points / self.cycles) / serial_throughput
        return self.single_core_cycles / self.cycles


class MulticoreModel:
    """Strong-scaling evaluation for one machine configuration.

    ``engine``/``timing`` select the replay engine and sampled-replay
    strategy exactly as on :class:`~repro.machine.timing.TimingEngine`
    (``None`` defers to ``REPRO_ENGINE``/``REPRO_TIMING``); alternatively a
    fully constructed engine can be injected via ``timing_engine``.  One
    engine serves the whole sweep on purpose: under columnar timing its
    share holds the memory plans and scoreboard memo tables, so every
    distinct slice height after the first replays against already-warmed
    state (slice kernels differ only in row count, and their programs pool
    by structural signature).
    """

    def __init__(
        self,
        config: MachineConfig,
        engine: Optional[str] = None,
        timing: Optional[str] = None,
        steady: Optional[str] = None,
        codegen: Optional[str] = None,
        timing_engine: Optional[TimingEngine] = None,
        artifact_dir=None,
    ) -> None:
        self.config = config
        if timing_engine is not None:
            if timing_engine.config is not config:
                raise ValueError("timing_engine was built for a different config")
            self.engine = timing_engine
        else:
            self.engine = TimingEngine(
                config,
                engine=engine,
                timing=timing,
                steady=steady,
                codegen=codegen,
                artifact_dir=artifact_dir,
            )

    def run_slice(
        self,
        kernel: Kernel,
        plan: Optional[SamplePlan] = None,
    ) -> PerfCounters:
        """Time one core's slice (band-sampled for large slices)."""
        return self.engine.run(kernel, plan=plan)

    def lockstep_slices(
        self,
        kernels: Sequence[Kernel],
        *,
        warm: bool = True,
    ) -> List[PerfCounters]:
        """Simulate explicit per-core slice kernels in band-lockstep.

        Unlike :meth:`strong_scaling` — which exploits slice symmetry and
        simulates one slice per distinct height — this times every supplied
        slice kernel in full, with all cores advancing one outer-loop band
        at a time.  Steady-state elision only engages when every core's
        controller is ready with the same period at the same boundary
        (:meth:`~repro.machine.timing.TimingEngine.run_lockstep`); a single
        demotion abandons elision on all cores, so each returned
        :class:`PerfCounters` is bit-identical to timing that slice alone
        with ``sample=False``.  Per-core controller accounting lands on the
        engine's ``lockstep_steady_stats``.
        """
        if not kernels:
            raise ValueError("lockstep_slices needs at least one slice kernel")
        return self.engine.run_lockstep(kernels, warm=warm)

    def scaling_point(
        self,
        cores: int,
        slice_counters: PerfCounters,
    ) -> ScalingPoint:
        """Combine a slice measurement with the contention bound."""
        if cores < 1:
            raise ValueError("core count must be >= 1")
        compute_cycles = slice_counters.cycles
        # The counters record the line size they were collected at; forcing
        # this config's L1 line size would silently mis-scale DRAM traffic
        # for counters measured on a machine with a different line size.
        dram_bytes = float(slice_counters.dram_bytes())
        bandwidth = self.config.mem_bandwidth_bytes_per_cycle
        if bandwidth <= 0:
            # A non-positive bandwidth used to mean "never bandwidth-bound",
            # which turns the contention model into a no-op without any
            # signal to the caller; a config like that is a setup error.
            raise ValueError(
                "mem_bandwidth_bytes_per_cycle must be positive for the "
                f"contention bound, got {bandwidth!r}"
            )
        bw_cycles = cores * dram_bytes / bandwidth
        cycles = max(compute_cycles, bw_cycles)
        total_points = cores * slice_counters.points
        seconds = cycles / (self.config.clock_ghz * 1e9)
        gstencil = total_points / seconds / 1e9 if seconds > 0 else 0.0
        return ScalingPoint(
            cores=cores,
            cycles=cycles,
            points=total_points,
            gstencil_per_s=gstencil,
            bandwidth_bound=bw_cycles > compute_cycles,
            dram_bytes_per_core=dram_bytes,
            single_core_cycles=compute_cycles,
        )

    def series_from_slices(
        self,
        slices: Mapping[int, PerfCounters],
        total_rows: int,
        core_counts: Sequence[int],
    ) -> List[ScalingPoint]:
        """Build the scaling curve from pre-measured per-slice counters.

        ``slices`` maps slice height (interior rows) to that slice's
        counters; it must contain ``total_rows // P`` for every ``P`` in
        ``core_counts`` *and* ``total_rows`` itself (the serial reference
        every point's :attr:`ScalingPoint.speedup_vs_serial` is rebased
        against).  ``total_rows % P`` remainder rows are not assigned to any
        core; the dropped count is surfaced on each point.
        """
        if total_rows not in slices:
            raise ValueError(
                f"slices must include the serial reference height {total_rows}"
            )
        serial = slices[total_rows]
        out: List[ScalingPoint] = []
        for cores in core_counts:
            rows = total_rows // cores
            if rows <= 0:
                raise ValueError(f"{cores} cores leave no rows per core")
            if rows not in slices:
                raise ValueError(f"missing slice measurement for {rows} rows")
            point = self.scaling_point(cores, slices[rows])
            point.serial_cycles = serial.cycles
            point.serial_points = serial.points
            point.remainder_rows = total_rows % cores
            out.append(point)
        return out

    def strong_scaling(
        self,
        kernel_for_rows: Callable[[int], Kernel],
        total_rows: int,
        core_counts: Sequence[int],
        plan: Optional[SamplePlan] = None,
    ) -> List[ScalingPoint]:
        """Sweep core counts; each core gets ``total_rows // P`` rows.

        ``kernel_for_rows(rows)`` must build the per-slice kernel (same
        method, same row width, ``rows`` interior rows).  Slices of equal
        height are simulated once per distinct height.  The ``cores == 1``
        (full-grid) slice is always simulated — even when 1 is not in
        ``core_counts`` — so every point's
        :attr:`ScalingPoint.speedup_vs_serial` is rebased against the true
        serial measurement rather than its own slice.
        """
        heights = set()
        for cores in core_counts:
            rows = total_rows // cores
            if rows <= 0:
                raise ValueError(f"{cores} cores leave no rows per core")
            heights.add(rows)
        heights.add(total_rows)  # serial reference
        slices: Dict[int, PerfCounters] = {
            rows: self.run_slice(kernel_for_rows(rows), plan=plan)
            for rows in sorted(heights)
        }
        return self.series_from_slices(slices, total_rows, core_counts)
