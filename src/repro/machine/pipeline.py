"""Event-scoreboard timing model of the in-order superscalar core.

The model is the piece that makes the paper's instruction-scheduling story
observable in Python: instructions issue **in program order**, stalling on

* operand readiness (register/tile-slice scoreboard, no renaming),
* execution-port availability (per-class pipe count and per-instruction
  initiation interval), and
* the per-cycle issue-width ceiling,

so a kernel whose loads, outer products, MLAs and stores are interleaved by
the scheduling pass genuinely retires more instructions per cycle than the
same multiset of instructions in naive order.  Loads resolve their latency
through the cache hierarchy at issue time (stall-on-use, so independent
loads pipeline behind misses and software prefetch actually hides latency).

The walk is O(trace length): each instruction computes its issue cycle as a
max over a handful of scoreboard entries — no cycle-by-cycle loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.isa.instructions import (
    Instruction,
    LD1D,
    LD1D_STRIDED,
    PortClass,
    PRFM,
    ST1D,
    ST1D_SLICE,
)
from repro.machine.cache import L1, L2, MEM, CacheHierarchy
from repro.machine.config import MachineConfig
from repro.machine.perf import PerfCounters
from repro.machine.prefetcher import StreamPrefetcher


class PipelineModel:
    """In-order multi-issue pipeline with a register scoreboard."""

    def __init__(
        self,
        config: MachineConfig,
        hierarchy: Optional[CacheHierarchy] = None,
        prefetcher: Optional[StreamPrefetcher] = None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy if hierarchy is not None else CacheHierarchy(config)
        if prefetcher is None:
            prefetcher = StreamPrefetcher(
                self.hierarchy,
                num_streams=config.hw_prefetch_streams,
                depth=config.hw_prefetch_depth,
                enabled=config.hw_prefetch_enabled,
            )
        self.prefetcher = prefetcher

        #: Next-free cycle per pipe, per port class.
        self._port_free: Dict[PortClass, List[int]] = {
            port: [0] * count for port, count in config.ports.items()
        }
        #: Scoreboard: dependence key -> cycle the value becomes available.
        self._ready: Dict[object, int] = {}
        #: In-order frontier: issue cycles are non-decreasing.
        self._frontier = 0
        #: Issue-width bookkeeping for the frontier cycle.
        self._cycle = 0
        self._issued_this_cycle = 0
        #: Completion time of the latest-finishing instruction.
        self.makespan = 0

        self.instructions_retired = 0
        self.instructions_by_port: Dict[PortClass, int] = {}
        self.flops = 0
        self.useful_flops = 0
        self.sw_prefetches = 0

    # ------------------------------------------------------------------

    def process(self, ins: Instruction) -> int:
        """Advance the model by one instruction; return its issue cycle."""
        spec = self.config.latency_for(ins)

        # Earliest cycle with operands ready (reads) and no WAW overtaking
        # of an in-flight write to the same key (no renaming).
        t = self._frontier
        for key in ins.reads():
            r = self._ready.get(key, 0)
            if r > t:
                t = r
        for key in ins.writes():
            r = self._ready.get(key, 0)
            if r > t:
                t = r

        # Port availability: take the least-loaded pipe of the class.
        pipes = self._port_free.get(ins.port)
        if not pipes:
            raise RuntimeError(
                f"{self.config.name}: no {ins.port} pipe for {ins.mnemonic}"
            )
        pipe_idx = min(range(len(pipes)), key=pipes.__getitem__)
        if pipes[pipe_idx] > t:
            t = pipes[pipe_idx]

        # Per-cycle issue-width ceiling.
        if t > self._cycle:
            self._cycle = t
            self._issued_this_cycle = 0
        if self._issued_this_cycle >= self.config.issue_width:
            t = self._cycle + 1
            self._cycle = t
            self._issued_this_cycle = 0

        # Memory behaviour resolves at issue: the cache level reached
        # determines the load latency; prefetches fill without stalling.
        latency = spec.latency
        if isinstance(ins, (LD1D, LD1D_STRIDED)):
            worst = L1
            for addr, nwords in ins.mem_reads():
                level = self.hierarchy.demand_access(addr, nwords, write=False)
                self.prefetcher.observe(addr, nwords, hit=level == L1)
                worst = max(worst, level)
            latency += self._miss_penalty(worst)
        elif isinstance(ins, (ST1D, ST1D_SLICE)):
            for addr, nwords in ins.mem_writes():
                level = self.hierarchy.demand_access(addr, nwords, write=True)
                self.prefetcher.observe(addr, nwords, hit=level == L1)
        elif isinstance(ins, PRFM):
            self.hierarchy.software_prefetch(ins.addr, ins.length, write=ins.write)
            self.sw_prefetches += 1

        # Commit the issue.
        pipes[pipe_idx] = t + spec.initiation_interval
        self._frontier = t
        self._issued_this_cycle += 1
        done = t + latency
        for key in ins.writes():
            self._ready[key] = done
        if done > self.makespan:
            self.makespan = done

        self.instructions_retired += 1
        self.instructions_by_port[ins.port] = self.instructions_by_port.get(ins.port, 0) + 1
        self.flops += ins.flops
        self.useful_flops += ins.useful_flops
        return t

    def process_trace(self, trace: Iterable[Instruction]) -> None:
        """Process a straight-line sequence of instructions."""
        for ins in trace:
            self.process(ins)

    def _miss_penalty(self, level: int) -> int:
        cfg = self.config
        if level == L1:
            return 0
        if level == L2:
            return cfg.l2_load_latency - cfg.l1_load_latency
        if level == MEM:
            return cfg.mem_load_latency - cfg.l1_load_latency
        raise ValueError(f"unknown memory level {level}")

    # ------------------------------------------------------------------

    def snapshot(self) -> PerfCounters:
        """Current cumulative counters as a :class:`PerfCounters`."""
        h = self.hierarchy
        pc = PerfCounters()
        pc.cycles = float(self.makespan)
        pc.instructions = self.instructions_retired
        pc.instructions_by_port = dict(self.instructions_by_port)
        pc.flops = self.flops
        pc.useful_flops = self.useful_flops
        pc.l1_accesses = h.l1.stats.perf_accesses
        pc.l1_hits = h.l1.stats.perf_hits
        pc.l1_demand_accesses = h.l1.stats.demand_accesses
        pc.l1_demand_hits = h.l1.stats.demand_hits
        pc.l1_prefetch_fills = h.l1.stats.prefetch_fills
        pc.l2_accesses = h.l2.stats.demand_accesses
        pc.l2_hits = h.l2.stats.demand_hits
        pc.dram_lines_read = h.mem_lines_read
        pc.dram_lines_written = h.mem_lines_written
        pc.sw_prefetches = self.sw_prefetches
        pc.hw_prefetches = self.prefetcher.prefetches_issued
        pc.line_bytes = self.config.l1.line_bytes
        return pc

    @staticmethod
    def delta(after: PerfCounters, before: PerfCounters) -> PerfCounters:
        """Counter difference between two snapshots (for band sampling)."""
        out = PerfCounters()
        out.cycles = after.cycles - before.cycles
        out.instructions = after.instructions - before.instructions
        out.instructions_by_port = {
            k: after.instructions_by_port.get(k, 0) - before.instructions_by_port.get(k, 0)
            for k in set(after.instructions_by_port) | set(before.instructions_by_port)
        }
        out.flops = after.flops - before.flops
        out.useful_flops = after.useful_flops - before.useful_flops
        out.l1_accesses = after.l1_accesses - before.l1_accesses
        out.l1_hits = after.l1_hits - before.l1_hits
        out.l1_demand_accesses = after.l1_demand_accesses - before.l1_demand_accesses
        out.l1_demand_hits = after.l1_demand_hits - before.l1_demand_hits
        out.l1_prefetch_fills = after.l1_prefetch_fills - before.l1_prefetch_fills
        out.l2_accesses = after.l2_accesses - before.l2_accesses
        out.l2_hits = after.l2_hits - before.l2_hits
        out.dram_lines_read = after.dram_lines_read - before.dram_lines_read
        out.dram_lines_written = after.dram_lines_written - before.dram_lines_written
        out.sw_prefetches = after.sw_prefetches - before.sw_prefetches
        out.hw_prefetches = after.hw_prefetches - before.hw_prefetches
        out.line_bytes = after.line_bytes
        return out
