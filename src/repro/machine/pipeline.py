"""Event-scoreboard timing model of the in-order superscalar core.

The model is the piece that makes the paper's instruction-scheduling story
observable in Python: instructions issue **in program order**, stalling on

* operand readiness (register/tile-slice scoreboard, no renaming),
* execution-port availability (per-class pipe count and per-instruction
  initiation interval), and
* the per-cycle issue-width ceiling,

so a kernel whose loads, outer products, MLAs and stores are interleaved by
the scheduling pass genuinely retires more instructions per cycle than the
same multiset of instructions in naive order.  Loads resolve their latency
through the cache hierarchy at issue time (stall-on-use, so independent
loads pipeline behind misses and software prefetch actually hides latency).

The walk is O(trace length): each instruction computes its issue cycle as a
max over a handful of scoreboard entries — no cycle-by-cycle loop.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

from repro.isa.instructions import (
    Instruction,
    LD1D,
    LD1D_STRIDED,
    PortClass,
    PRFM,
    ST1D,
    ST1D_SLICE,
)
from repro.machine.cache import L1, L2, MEM, CacheHierarchy
from repro.machine.compiled import (
    K_LOAD,
    K_PRFM,
    K_STORE,
    N_SLOTS,
    SCOREBOARD_KEYS,
    SLOT_OF,
    TimingProgram,
)
from repro.machine.config import MachineConfig
from repro.machine.perf import PerfCounters
from repro.machine.prefetcher import LINES_PER_PAGE, StreamPrefetcher, _Stream


class PipelineModel:
    """In-order multi-issue pipeline with a register scoreboard."""

    def __init__(
        self,
        config: MachineConfig,
        hierarchy: Optional[CacheHierarchy] = None,
        prefetcher: Optional[StreamPrefetcher] = None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy if hierarchy is not None else CacheHierarchy(config)
        if prefetcher is None:
            prefetcher = StreamPrefetcher(
                self.hierarchy,
                num_streams=config.hw_prefetch_streams,
                depth=config.hw_prefetch_depth,
                enabled=config.hw_prefetch_enabled,
            )
        self.prefetcher = prefetcher

        #: Next-free cycle per pipe, per port class.
        self._port_free: Dict[PortClass, List[int]] = {
            port: [0] * count for port, count in config.ports.items()
        }
        #: Scoreboard: dependence key -> cycle the value becomes available.
        self._ready: Dict[object, int] = {}
        #: In-order frontier: issue cycles are non-decreasing.
        self._frontier = 0
        #: Issue-width bookkeeping for the frontier cycle.
        self._cycle = 0
        self._issued_this_cycle = 0
        #: Completion time of the latest-finishing instruction.
        self.makespan = 0
        #: Template replays dispatch to exec-compiled straight-line kernels
        #: (:mod:`repro.machine.codegen`) when set.  Off by default so
        #: directly-constructed models stay the trusted interpreted walk;
        #: :class:`~repro.machine.timing.TimingEngine` turns it on per its
        #: ``codegen`` mode.
        self.codegen = False

        self.instructions_retired = 0
        self.instructions_by_port: Dict[PortClass, int] = Counter()
        self.flops = 0
        self.useful_flops = 0
        self.sw_prefetches = 0

        #: Hoisted mnemonic -> LatencySpec table (configs are immutable).
        self._latency_table = dict(config.latencies)

    # ------------------------------------------------------------------

    def process(self, ins: Instruction) -> int:
        """Advance the model by one instruction; return its issue cycle."""
        spec = self._latency_table.get(ins.mnemonic)
        if spec is None:
            spec = self.config.latency_for(ins)  # raises the canonical KeyError

        # Earliest cycle with operands ready (reads) and no WAW overtaking
        # of an in-flight write to the same key (no renaming).
        t = self._frontier
        for key in ins.reads():
            r = self._ready.get(key, 0)
            if r > t:
                t = r
        for key in ins.writes():
            r = self._ready.get(key, 0)
            if r > t:
                t = r

        # Port availability: take the least-loaded pipe of the class.
        pipes = self._port_free.get(ins.port)
        if not pipes:
            raise RuntimeError(
                f"{self.config.name}: no {ins.port} pipe for {ins.mnemonic}"
            )
        pipe_idx = min(range(len(pipes)), key=pipes.__getitem__)
        if pipes[pipe_idx] > t:
            t = pipes[pipe_idx]

        # Per-cycle issue-width ceiling.
        if t > self._cycle:
            self._cycle = t
            self._issued_this_cycle = 0
        if self._issued_this_cycle >= self.config.issue_width:
            t = self._cycle + 1
            self._cycle = t
            self._issued_this_cycle = 0

        # Memory behaviour resolves at issue: the cache level reached
        # determines the load latency; prefetches fill without stalling.
        latency = spec.latency
        if isinstance(ins, (LD1D, LD1D_STRIDED)):
            worst = L1
            for addr, nwords in ins.mem_reads():
                level = self.hierarchy.demand_access(addr, nwords, write=False)
                self.prefetcher.observe(addr, nwords, hit=level == L1)
                worst = max(worst, level)
            latency += self._miss_penalty(worst)
        elif isinstance(ins, (ST1D, ST1D_SLICE)):
            for addr, nwords in ins.mem_writes():
                level = self.hierarchy.demand_access(addr, nwords, write=True)
                self.prefetcher.observe(addr, nwords, hit=level == L1)
        elif isinstance(ins, PRFM):
            self.hierarchy.software_prefetch(ins.addr, ins.length, write=ins.write)
            self.sw_prefetches += 1

        # Commit the issue.
        pipes[pipe_idx] = t + spec.initiation_interval
        self._frontier = t
        self._issued_this_cycle += 1
        done = t + latency
        for key in ins.writes():
            self._ready[key] = done
        if done > self.makespan:
            self.makespan = done

        self.instructions_retired += 1
        self.instructions_by_port[ins.port] += 1
        self.flops += ins.flops
        self.useful_flops += ins.useful_flops
        return t

    def process_trace(self, trace: Iterable[Instruction]) -> None:
        """Process a straight-line sequence of instructions."""
        for ins in trace:
            self.process(ins)

    def process_template(self, program: TimingProgram, addrs: Sequence[int]) -> None:
        """Replay a precompiled template, through a generated kernel if possible.

        With :attr:`codegen` set, the program's exec-compiled straight-line
        kernel (:mod:`repro.machine.codegen`) runs instead of the
        interpreted step loop — generated lazily on first dispatch (or
        loaded from the AOT artifact store), verified on its first live
        emit against the interpreted walk, and demoted permanently to the
        interpreted program on any mismatch, ``exec`` failure or store
        skew.  The interpreted result always stands during the probe, so
        every path is bit-identical to :meth:`process_template_interp`.
        """
        if self.codegen:
            state = program.codegen
            if state is None:
                from repro.machine.codegen import install_timing

                state = install_timing(program, self.config)
            if not state.demoted:
                if state.verified:
                    state.fn(self, addrs)
                    return
                from repro.machine.codegen import probe_timing

                probe_timing(state, self, program, addrs)
                return
        self.process_template_interp(program, addrs)

    def process_template_interp(
        self, program: TimingProgram, addrs: Sequence[int]
    ) -> None:
        """Replay a precompiled template with rebased addresses (interpreted).

        Bit-identical to calling :meth:`process` on the template's
        instructions carrying the given addresses: the same scoreboard
        arithmetic, the same first-least-loaded pipe choice, the same
        cache/prefetcher operations in the same order.  Readiness runs in
        a flat slot array (synchronized with the reference ``_ready`` dict
        at entry/exit), the per-line L1 probe and the stream-table
        training are inlined operation-for-operation, and per-instruction
        counter updates are applied in bulk from the program's aggregates.
        Miss and prefetch-fill paths go through the same
        hierarchy/prefetcher methods the reference walk uses.
        """
        cfg = self.config
        ready = self._ready
        slot_of_get = SLOT_OF.get
        slots = [0] * N_SLOTS
        for key, val in ready.items():
            idx = slot_of_get(key)
            if idx is not None:
                slots[idx] = val
        pipes_by_id = [self._port_free[p] for p in program.ports]
        hierarchy = self.hierarchy
        access_line_miss = hierarchy._access_line_miss
        fill_l1 = hierarchy._fill_l1
        fill_l2 = hierarchy._fill_l2
        watch = hierarchy.static_watch
        line_words = hierarchy.line_words
        l1 = hierarchy.l1
        l1_stats = l1.stats
        l1_num_sets = l1.num_sets
        l1_sets = l1._sets
        l1_dirty = l1._dirty
        l2 = hierarchy.l2
        l2_num_sets = l2.num_sets
        l2_sets = l2._sets
        pf = self.prefetcher
        pf_on = pf.enabled and pf.num_streams > 0
        pf_streams = pf._streams
        pf_move = pf_streams.move_to_end
        pf_get = pf_streams.get
        pf_confirm = pf.confirm_advances
        pf_max = pf.num_streams
        pf_depth = pf.depth
        issue_width = cfg.issue_width
        penalty = (
            0,
            0,
            cfg.l2_load_latency - cfg.l1_load_latency,
            cfg.mem_load_latency - cfg.l1_load_latency,
        )
        frontier = self._frontier
        cycle = self._cycle
        issued = self._issued_this_cycle
        makespan = self.makespan
        # L1 demand counters accumulate locally and flush once at exit;
        # nothing reads them mid-replay (the miss path only touches L2 and
        # fill statistics).
        demand_accesses = 0
        demand_hits = 0

        for dep_slots, write_slots, port_id, base_latency, ii, kind, memops in program.steps:
            t = frontier
            for s in dep_slots:
                r = slots[s]
                if r > t:
                    t = r

            pipes = pipes_by_id[port_id]
            if len(pipes) == 1:
                pipe_idx = 0
            elif len(pipes) == 2:
                pipe_idx = 0 if pipes[0] <= pipes[1] else 1
            else:
                pipe_idx = min(range(len(pipes)), key=pipes.__getitem__)
            if pipes[pipe_idx] > t:
                t = pipes[pipe_idx]

            if t > cycle:
                cycle = t
                issued = 0
            if issued >= issue_width:
                t = cycle + 1
                cycle = t
                issued = 0

            latency = base_latency
            if kind:
                if kind == K_PRFM:
                    addr_idx, length, wr = memops
                    hierarchy.software_prefetch(addrs[addr_idx], length, write=wr)
                else:
                    # Loads and stores share one inlined walk; the reference
                    # order per memop is: every covered line's demand access,
                    # then every covered line's prefetcher training with the
                    # memop's overall hit flag.
                    is_store = kind == K_STORE
                    worst = L1
                    for addr_idx, offset, nwords in memops:
                        addr = addrs[addr_idx] + offset
                        first = addr // line_words
                        last = (addr + nwords - 1) // line_words
                        level = L1
                        line = first
                        while True:
                            # Inlined CacheHierarchy._access_line L1 probe.
                            demand_accesses += 1
                            ways = l1_sets[line % l1_num_sets]
                            if line in ways:
                                l1._tick += 1
                                ways[line] = l1._tick
                                demand_hits += 1
                                if is_store:
                                    l1_dirty.add(line)
                            else:
                                lv = access_line_miss(line, is_store)
                                if lv > level:
                                    level = lv
                            if line == last:
                                break
                            line += 1
                        if pf_on:
                            # Inlined StreamPrefetcher._observe_line.
                            hit = level == L1
                            line = first
                            while True:
                                stream = pf_get(line)
                                if stream is not None:
                                    pf_move(line)
                                else:
                                    stream = pf_get(line - 1)
                                    if stream is not None:
                                        del pf_streams[line - 1]
                                        stream.advances += 1
                                        stream.tail_line = line
                                        pf_streams[line] = stream
                                        if stream.advances == pf_confirm:
                                            pf.streams_confirmed += 1
                                        if stream.advances >= pf_confirm:
                                            # Inlined _issue_ahead +
                                            # hardware_prefetch probes.
                                            page = line // LINES_PER_PAGE
                                            for target in range(
                                                line + 1, line + pf_depth + 1
                                            ):
                                                if target // LINES_PER_PAGE != page:
                                                    break
                                                if (
                                                    target
                                                    not in l1_sets[target % l1_num_sets]
                                                ):
                                                    if (
                                                        watch is not None
                                                        and target in watch
                                                    ):
                                                        hierarchy.static_watch_hits += 1
                                                    ways2 = l2_sets[
                                                        target % l2_num_sets
                                                    ]
                                                    if target in ways2:
                                                        l2._tick += 1
                                                        ways2[target] = l2._tick
                                                    else:
                                                        hierarchy.mem_lines_read += 1
                                                        fill_l2(target)
                                                    fill_l1(target, False)
                                                    l1_stats.prefetch_fills += 1
                                                pf.prefetches_issued += 1
                                    elif not hit:
                                        pf_streams[line] = _Stream(tail_line=line)
                                        pf.streams_allocated += 1
                                        if len(pf_streams) > pf_max:
                                            pf_streams.popitem(last=False)
                                if line == last:
                                    break
                                line += 1
                        if level > worst:
                            worst = level
                    if not is_store:
                        latency += penalty[worst]

            pipes[pipe_idx] = t + ii
            frontier = t
            issued += 1
            done = t + latency
            for s in write_slots:
                slots[s] = done
            if done > makespan:
                makespan = done

        l1_stats.demand_accesses += demand_accesses
        l1_stats.demand_hits += demand_hits
        for i in range(N_SLOTS):
            v = slots[i]
            if v:
                ready[SCOREBOARD_KEYS[i]] = v
        self._frontier = frontier
        self._cycle = cycle
        self._issued_this_cycle = issued
        self.makespan = makespan
        self.instructions_retired += program.count
        by_port = self.instructions_by_port
        for port, n in program.port_counts.items():
            by_port[port] += n
        self.flops += program.flops
        self.useful_flops += program.useful_flops
        self.sw_prefetches += program.n_prfm

    def clone(self) -> "PipelineModel":
        """Independent deep copy of all behavioural state and counters.

        The clone shares nothing mutable with the original: the columnar
        replay's probe verification advances a clone down the candidate
        path while the original takes the scalar walk, then compares.
        """
        hierarchy = self.hierarchy.clone()
        out = PipelineModel(self.config, hierarchy, self.prefetcher.clone(hierarchy))
        out._port_free = {port: list(pipes) for port, pipes in self._port_free.items()}
        out._ready = dict(self._ready)
        out._frontier = self._frontier
        out._cycle = self._cycle
        out._issued_this_cycle = self._issued_this_cycle
        out.makespan = self.makespan
        out.instructions_retired = self.instructions_retired
        out.instructions_by_port = Counter(self.instructions_by_port)
        out.flops = self.flops
        out.useful_flops = self.useful_flops
        out.sw_prefetches = self.sw_prefetches
        out.codegen = self.codegen
        return out

    def state_signature(self) -> tuple:
        """Canonical behavioural state of the whole machine model.

        Everything a future instruction sequence can observe, normalized so
        that states reached at different absolute cycles compare equal:

        * scoreboard entries and port frontiers relative to the in-order
          frontier (values at or below it are dead — they can never raise a
          future issue cycle — and are dropped/clamped);
        * per-class port pipes as a sorted multiset (pipes within a class
          are interchangeable: the argmin pipe choice always picks the same
          *value* under permutation and preserves the multiset);
        * issue-width bookkeeping and the makespan overhang;
        * cache tags + LRU order + dirty bits, and the prefetcher stream
          table (see their ``state_signature`` methods).

        Counters are deliberately excluded: they never feed back into
        behaviour.  Equal signatures therefore guarantee that identical
        input traces produce identical counter *deltas* from here on — the
        foundation of the pass-level memoization in
        :class:`~repro.machine.timing.TimingEngine`.
        """
        h = self.hierarchy
        return (
            self._core_signature(),
            h.l1.state_signature(),
            h.l2.state_signature(),
            self.prefetcher.state_signature(),
        )

    def _core_signature(self) -> tuple:
        """Frontier-relative pipeline core state (no cache/prefetcher parts).

        Shared by :meth:`state_signature`, :meth:`state_digest` and the
        band-rebased signatures of :mod:`repro.machine.steady`.
        """
        f = self._frontier
        ports = tuple(
            (str(port), tuple(sorted(max(v - f, 0) for v in pipes)))
            for port, pipes in sorted(
                self._port_free.items(), key=lambda kv: str(kv[0])
            )
        )
        ready = tuple(
            sorted((str(k), v - f) for k, v in self._ready.items() if v > f)
        )
        return (
            ports,
            ready,
            self._cycle - f,
            self._issued_this_cycle,
            max(self.makespan - f, 0),
        )

    def state_digest(self) -> tuple:
        """Compact equivalent of :meth:`state_signature` for equality checks.

        The pipeline core stays structural (it is small), while the cache
        levels and the stream table collapse to memoized digests — repeated
        boundary checks against unchanged caches then skip the full per-set
        serialization (see ``CacheLevel.signature_digest``).  Two states
        compare equal iff their full signatures do (modulo hash collisions,
        the same assumption every digest in the artifact layer makes).
        """
        h = self.hierarchy
        return (
            self._core_signature(),
            h.l1.signature_digest(),
            h.l2.signature_digest(),
            self.prefetcher.signature_digest(),
        )

    def _miss_penalty(self, level: int) -> int:
        cfg = self.config
        if level == L1:
            return 0
        if level == L2:
            return cfg.l2_load_latency - cfg.l1_load_latency
        if level == MEM:
            return cfg.mem_load_latency - cfg.l1_load_latency
        raise ValueError(f"unknown memory level {level}")

    # ------------------------------------------------------------------

    def snapshot(self) -> PerfCounters:
        """Current cumulative counters as a :class:`PerfCounters`."""
        h = self.hierarchy
        pc = PerfCounters()
        pc.cycles = float(self.makespan)
        pc.instructions = self.instructions_retired
        pc.instructions_by_port = dict(self.instructions_by_port)
        pc.flops = self.flops
        pc.useful_flops = self.useful_flops
        pc.l1_accesses = h.l1.stats.perf_accesses
        pc.l1_hits = h.l1.stats.perf_hits
        pc.l1_demand_accesses = h.l1.stats.demand_accesses
        pc.l1_demand_hits = h.l1.stats.demand_hits
        pc.l1_prefetch_fills = h.l1.stats.prefetch_fills
        pc.l2_accesses = h.l2.stats.demand_accesses
        pc.l2_hits = h.l2.stats.demand_hits
        pc.dram_lines_read = h.mem_lines_read
        pc.dram_lines_written = h.mem_lines_written
        pc.sw_prefetches = self.sw_prefetches
        pc.hw_prefetches = self.prefetcher.prefetches_issued
        pc.line_bytes = self.config.l1.line_bytes
        return pc

    @staticmethod
    def delta(after: PerfCounters, before: PerfCounters) -> PerfCounters:
        """Counter difference between two snapshots (for band sampling)."""
        out = PerfCounters()
        out.cycles = after.cycles - before.cycles
        out.instructions = after.instructions - before.instructions
        out.instructions_by_port = {
            k: after.instructions_by_port.get(k, 0) - before.instructions_by_port.get(k, 0)
            for k in set(after.instructions_by_port) | set(before.instructions_by_port)
        }
        out.flops = after.flops - before.flops
        out.useful_flops = after.useful_flops - before.useful_flops
        out.l1_accesses = after.l1_accesses - before.l1_accesses
        out.l1_hits = after.l1_hits - before.l1_hits
        out.l1_demand_accesses = after.l1_demand_accesses - before.l1_demand_accesses
        out.l1_demand_hits = after.l1_demand_hits - before.l1_demand_hits
        out.l1_prefetch_fills = after.l1_prefetch_fills - before.l1_prefetch_fills
        out.l2_accesses = after.l2_accesses - before.l2_accesses
        out.l2_hits = after.l2_hits - before.l2_hits
        out.dram_lines_read = after.dram_lines_read - before.dram_lines_read
        out.dram_lines_written = after.dram_lines_written - before.dram_lines_written
        out.sw_prefetches = after.sw_prefetches - before.sw_prefetches
        out.hw_prefetches = after.hw_prefetches - before.hw_prefetches
        out.line_bytes = after.line_bytes
        return out
