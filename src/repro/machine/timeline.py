"""Pipeline timeline rendering: see the interleaving the scheduler built.

:func:`record_timeline` replays a trace through the timing model and keeps
each instruction's issue cycle; :func:`render_timeline` draws a text Gantt
chart with one lane per pipe, so the co-issue of matrix, vector and memory
instructions (the whole point of Section 3.2) is directly visible:

.. code-block:: text

    cycle   0         1         2
            0123456789012345678901234567
    V0      .E.MM.MM....
    V1      ..E.MM.MM...
    M0      F.F.F.F.A...
    L0      LL..........
    ...

Used by the kernel-inspection example and by tests that pin down issue
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.isa.instructions import (
    EXT,
    FADD_V,
    FMLA,
    FMLA_IDX,
    FMLA_M,
    FMOPA,
    FMUL_IDX,
    Instruction,
    LD1D,
    LD1D_STRIDED,
    MOVA_TILE_TO_VEC,
    MOVA_VEC_TO_TILE,
    PortClass,
    PRFM,
    ST1D,
    ST1D_SLICE,
)
from repro.machine.config import MachineConfig
from repro.machine.pipeline import PipelineModel

#: One-character glyph per instruction kind (legend in render output).
GLYPHS: Tuple[Tuple[type, str], ...] = (
    (FMOPA, "F"),
    (FMLA_M, "G"),
    (MOVA_TILE_TO_VEC, "T"),
    (MOVA_VEC_TO_TILE, "t"),
    (FMLA, "M"),
    (FMLA_IDX, "M"),
    (FMUL_IDX, "m"),
    (FADD_V, "A"),
    (EXT, "E"),
    (LD1D_STRIDED, "g"),
    (LD1D, "L"),
    (ST1D_SLICE, "S"),
    (ST1D, "S"),
    (PRFM, "P"),
)


def _glyph(ins: Instruction) -> str:
    for klass, ch in GLYPHS:
        if isinstance(ins, klass):
            return ch
    return "."


@dataclass
class TimelineEvent:
    """One issued instruction."""

    index: int
    cycle: int
    port: PortClass
    glyph: str


def record_timeline(
    trace: Sequence[Instruction], config: MachineConfig
) -> List[TimelineEvent]:
    """Issue cycles of every instruction in ``trace`` on a fresh pipeline."""
    pipe = PipelineModel(config)
    events: List[TimelineEvent] = []
    for idx, ins in enumerate(trace):
        cycle = pipe.process(ins)
        events.append(TimelineEvent(index=idx, cycle=cycle, port=ins.port, glyph=_glyph(ins)))
    return events


def render_timeline(
    events: Sequence[TimelineEvent],
    config: MachineConfig,
    start: int = 0,
    width: int = 72,
) -> str:
    """Text Gantt chart: one lane per pipe, one column per cycle.

    Pipes of one port class are filled greedily in event order (the model
    does not expose pipe ids, so lane assignment is cosmetic: two events of
    one class in one cycle occupy two lanes).
    """
    lanes: Dict[str, Dict[int, str]] = {}
    order: List[str] = []
    for port, count in config.ports.items():
        for k in range(count):
            name = f"{port.value}{k}"
            lanes[name] = {}
            order.append(name)

    for ev in events:
        cycle = ev.cycle - start
        if not 0 <= cycle < width:
            continue
        for k in range(config.ports[ev.port]):
            name = f"{ev.port.value}{k}"
            if cycle not in lanes[name]:
                lanes[name][cycle] = ev.glyph
                break

    header_tens = "".join(str((start + c) // 10 % 10) if (start + c) % 10 == 0 else " " for c in range(width))
    header_ones = "".join(str((start + c) % 10) for c in range(width))
    lines = [f"{'cycle':<6}{header_tens}", f"{'':<6}{header_ones}"]
    for name in order:
        row = "".join(lanes[name].get(c, ".") for c in range(width))
        lines.append(f"{name:<6}{row}")
    lines.append(
        "legend: F=fmopa G=m-mla M=fmla m=fmul A=fadd E=ext "
        "L=load g=gather S=store P=prefetch T/t=mova"
    )
    return "\n".join(lines)


def occupancy(events: Sequence[TimelineEvent], config: MachineConfig) -> Dict[str, float]:
    """Fraction of cycles each port class issued at least one instruction."""
    if not events:
        return {}
    makespan = max(ev.cycle for ev in events) + 1
    busy: Dict[PortClass, set] = {}
    for ev in events:
        busy.setdefault(ev.port, set()).add(ev.cycle)
    return {port.value: len(cycles) / makespan for port, cycles in busy.items()}
