"""Set-associative write-back cache hierarchy with LRU replacement.

Two levels (L1D, L2) plus DRAM.  Addresses arrive as *word* (FP64)
addresses from the instruction stream and are converted to byte addresses
here.  Every demand access is resolved at line granularity; a vector load
that straddles a line boundary counts as two line-accesses, which is the
mechanism behind the shifted-load spatial reuse the matrix kernels rely on.

Statistics follow the paper's ``perf``-based methodology:

* *demand* accesses/hits per level (``L1-dcache-loads`` and friends);
* software-prefetch probes are counted in the L1 access/hit totals exactly
  as the PMU counts them — this is why Table 7 reports the spatial-prefetch
  version with ~3x more L1 hit *times* as well as a higher hit rate;
* hardware-prefetch fills are tracked separately and do not inflate demand
  statistics;
* DRAM line reads/writes are tracked for the multicore bandwidth model.
  Writeback traffic counts *every* dirty line that leaves L2, whichever
  path evicted it: a demand/prefetch fill of L2, or the L2 install
  performed on behalf of a dirty L1 eviction (the L1 -> L2 -> DRAM chain).
  The latter path was historically dropped, undercounting DRAM writes and
  weakening the Figure 16 bandwidth-contention bound.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.machine.config import CacheGeometry, MachineConfig

#: Memory access levels, in increasing latency order.
L1, L2, MEM = 1, 2, 3


@dataclass
class CacheStats:
    """Per-level counters (demand and prefetch separated)."""

    demand_accesses: int = 0
    demand_hits: int = 0
    prefetch_probes: int = 0
    prefetch_probe_hits: int = 0
    prefetch_fills: int = 0
    writebacks: int = 0

    @property
    def demand_hit_rate(self) -> float:
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_hits / self.demand_accesses

    @property
    def perf_accesses(self) -> int:
        """Accesses as a PMU would count them (demand + SW-prefetch probes)."""
        return self.demand_accesses + self.prefetch_probes

    @property
    def perf_hits(self) -> int:
        """Hits as a PMU would count them (demand + SW-prefetch probe hits)."""
        return self.demand_hits + self.prefetch_probe_hits

    @property
    def perf_hit_rate(self) -> float:
        if self.perf_accesses == 0:
            return 0.0
        return self.perf_hits / self.perf_accesses

    def copy(self) -> "CacheStats":
        return dataclasses.replace(self)

    def merge(self, other: "CacheStats") -> None:
        self.demand_accesses += other.demand_accesses
        self.demand_hits += other.demand_hits
        self.prefetch_probes += other.prefetch_probes
        self.prefetch_probe_hits += other.prefetch_probe_hits
        self.prefetch_fills += other.prefetch_fills
        self.writebacks += other.writebacks


class CacheLevel:
    """One set-associative, write-back, write-allocate cache level.

    Replacement state is an age map per set (``line -> last-use tick`` from a
    monotonic counter): hits and installs are O(1) dict operations, and only
    an actual eviction scans the (associativity-bounded) set for its oldest
    entry.  Age order is exactly MRU-list order, so replacement decisions are
    identical to a textbook LRU list at a fraction of the bookkeeping cost.
    """

    def __init__(self, geometry: CacheGeometry, name: str) -> None:
        self.geometry = geometry
        self.name = name
        self.num_sets = geometry.num_sets
        self.assoc = geometry.associativity
        # Per set: {line tag -> last-use tick}; bigger tick = more recent.
        self._sets: List[Dict[int, int]] = [{} for _ in range(self.num_sets)]
        self._tick = 0
        self._dirty: set = set()
        self.stats = CacheStats()
        #: Memoized ``(validity key, digest)`` for :meth:`signature_digest`.
        self._sig_memo: Optional[tuple] = None

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    def lookup(self, line: int, update_lru: bool = True) -> bool:
        """Probe for a line; on hit optionally promote to MRU."""
        ways = self._sets[line % self.num_sets]
        if line not in ways:
            return False
        if update_lru:
            self._tick += 1
            ways[line] = self._tick
        return True

    def install(self, line: int, dirty: bool = False) -> Optional[int]:
        """Insert a line at MRU; return the evicted *dirty* line, if any.

        Clean evictions are silent (no writeback traffic).
        """
        ways = self._sets[line % self.num_sets]
        self._tick += 1
        if line in ways:
            ways[line] = self._tick
            if dirty:
                self._dirty.add(line)
            return None
        ways[line] = self._tick
        if dirty:
            self._dirty.add(line)
        if len(ways) > self.assoc:
            victim = min(ways, key=ways.__getitem__)
            del ways[victim]
            if victim in self._dirty:
                self._dirty.discard(victim)
                self.stats.writebacks += 1
                return victim
        return None

    def mark_dirty(self, line: int) -> None:
        self._dirty.add(line)

    def contains(self, line: int) -> bool:
        """Non-destructive membership check (no LRU update)."""
        return line in self._sets[line % self.num_sets]

    def state_signature(self) -> tuple:
        """Canonical replacement-relevant state (tags, LRU order, dirty bits).

        Absolute tick values are *not* part of the signature: replacement
        only ever compares ticks within one set, so the per-set LRU order
        captures everything a future access sequence can observe.  Two
        cache levels with equal signatures behave identically from here on.
        """
        sets = tuple(
            tuple(sorted(ways, key=ways.__getitem__)) for ways in self._sets
        )
        # Sorted tuple, not a set: signatures are also digested via repr,
        # which must not depend on hash-table insertion history.
        return sets, tuple(sorted(self._dirty))

    def signature_digest(self) -> str:
        """Digest of :meth:`state_signature`, memoized on a mutation key.

        Every state mutation either bumps ``_tick`` (lookups, installs,
        evictions, flushes, jump-time relocation) or grows ``_dirty``
        (``mark_dirty`` and the inlined dirty-add fast paths — removal only
        ever happens on eviction/flush, which bump the tick), so
        ``(_tick, len(_dirty))`` is a sound validity key: an unchanged key
        means an unchanged signature, and repeated digests of an unchanged
        level skip the full per-set serialization.
        """
        key = (self._tick, len(self._dirty))
        memo = self._sig_memo
        if memo is not None and memo[0] == key:
            return memo[1]
        digest = hashlib.sha256(repr(self.state_signature()).encode()).hexdigest()
        self._sig_memo = (key, digest)
        return digest

    def clone(self) -> "CacheLevel":
        """Independent copy of all replacement state and statistics.

        The columnar replay's probe verification runs a candidate block on
        a cloned hierarchy so a mismatch never corrupts the real one.
        """
        out = CacheLevel.__new__(CacheLevel)
        out.geometry = self.geometry
        out.name = self.name
        out.num_sets = self.num_sets
        out.assoc = self.assoc
        out._sets = [dict(ways) for ways in self._sets]
        out._tick = self._tick
        out._dirty = set(self._dirty)
        out.stats = self.stats.copy()
        out._sig_memo = self._sig_memo
        return out

    def resident_lines(self) -> int:
        return sum(len(w) for w in self._sets)

    def flush(self) -> int:
        """Drop all lines; return number of dirty lines written back."""
        dirty = len(self._dirty)
        self.stats.writebacks += dirty
        for ways in self._sets:
            ways.clear()
        self._dirty.clear()
        self._tick += 1  # state changed: invalidate the signature-digest memo
        return dirty


class CacheHierarchy:
    """L1 + L2 + DRAM, with inclusive-style fills (L2 then L1).

    The hierarchy is the single point through which all memory traffic
    flows: demand loads/stores from the timing engine, software prefetch
    probes, and hardware-prefetcher fills.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.line_words = config.l1.line_bytes // 8
        self.l1 = CacheLevel(config.l1, "L1D")
        self.l2 = CacheLevel(config.l2, "L2")
        self.mem_lines_read = 0
        self.mem_lines_written = 0
        #: Steady-state verification watch (:mod:`repro.machine.steady`):
        #: while armed (a frozenset of static lines), every channel through
        #: which one of those lines could reach L2 — an L1 demand miss, a
        #: software-prefetch fill, a hardware-prefetch fill, or a dirty L1
        #: victim written back — bumps ``static_watch_hits``.  Any hit
        #: invalidates the steady window's L2-rotation argument.
        self.static_watch: Optional[frozenset] = None
        self.static_watch_hits = 0

    # -- address helpers ------------------------------------------------------

    def lines_for(self, word_addr: int, nwords: int) -> range:
        """Cache lines covered by a word-addressed access."""
        first = word_addr // self.line_words
        last = (word_addr + nwords - 1) // self.line_words
        return range(first, last + 1)

    # -- demand path ----------------------------------------------------------

    def demand_access(self, word_addr: int, nwords: int, write: bool) -> int:
        """Resolve a demand access; return the deepest level touched.

        Every covered line is looked up in L1 then L2 and installed on the
        way back (write-allocate for stores).  The returned level (L1, L2 or
        MEM) is the slowest line's source and determines load latency.
        """
        first = word_addr // self.line_words
        last = (word_addr + nwords - 1) // self.line_words
        if first == last:
            return self._access_line(first, write)
        worst = L1
        for line in range(first, last + 1):
            level = self._access_line(line, write)
            if level > worst:
                worst = level
        return worst

    def _access_line(self, line: int, write: bool) -> int:
        # L1-hit fast path: one set resolution serves the probe, the LRU
        # promotion and the dirty marking (the overwhelmingly common case).
        l1 = self.l1
        l1.stats.demand_accesses += 1
        ways = l1._sets[line % l1.num_sets]
        if line in ways:
            l1._tick += 1
            ways[line] = l1._tick
            l1.stats.demand_hits += 1
            if write:
                l1._dirty.add(line)
            return L1
        return self._access_line_miss(line, write)

    def _access_line_miss(self, line: int, write: bool) -> int:
        """L1-miss continuation of a demand access (L1 stats already counted).

        Split out so the compiled replay loop can inline the L1-hit probe
        and share this exact slow path.
        """
        if self.static_watch is not None and line in self.static_watch:
            self.static_watch_hits += 1
        self.l2.stats.demand_accesses += 1
        if self.l2.lookup(line):
            self.l2.stats.demand_hits += 1
            self._fill_l1(line, dirty=write)
            return L2
        self.mem_lines_read += 1
        self._fill_l2(line)
        self._fill_l1(line, dirty=write)
        return MEM

    # -- prefetch paths ---------------------------------------------------------

    def software_prefetch(self, word_addr: int, nwords: int, write: bool) -> None:
        """Execute a PRFM: probe L1 (PMU-visible) and fill on miss.

        The probe is counted in L1 perf statistics (see module docstring);
        misses pull the line through L2 into L1 without any demand-miss
        accounting, exactly like a non-faulting prefetch.
        """
        for line in self.lines_for(word_addr, nwords):
            self.l1.stats.prefetch_probes += 1
            if self.l1.lookup(line):
                self.l1.stats.prefetch_probe_hits += 1
                continue
            if self.static_watch is not None and line in self.static_watch:
                self.static_watch_hits += 1
            if not self.l2.lookup(line):
                self.mem_lines_read += 1
                self._fill_l2(line)
            self._fill_l1(line, dirty=write)
            self.l1.stats.prefetch_fills += 1

    def hardware_prefetch(self, line: int) -> None:
        """Fill a line on behalf of the hardware stream prefetcher."""
        if self.l1.contains(line):
            return
        if self.static_watch is not None and line in self.static_watch:
            self.static_watch_hits += 1
        if not self.l2.lookup(line):
            self.mem_lines_read += 1
            self._fill_l2(line)
        self._fill_l1(line, dirty=False)
        self.l1.stats.prefetch_fills += 1

    # -- fills ------------------------------------------------------------------

    def _fill_l1(self, line: int, dirty: bool) -> None:
        victim = self.l1.install(line, dirty=dirty)
        if victim is not None:
            # Dirty L1 eviction: write back into L2.
            if self.static_watch is not None and victim in self.static_watch:
                self.static_watch_hits += 1
            if not self.l2.lookup(victim, update_lru=False):
                l2_victim = self.l2.install(victim, dirty=True)
                if l2_victim is not None:
                    # The install displaced a dirty L2 line: that line goes
                    # all the way to DRAM (the L1 -> L2 -> DRAM chain).
                    self.mem_lines_written += 1
            else:
                self.l2.mark_dirty(victim)

    def _fill_l2(self, line: int) -> None:
        victim = self.l2.install(line, dirty=False)
        if victim is not None:
            self.mem_lines_written += 1

    # -- maintenance --------------------------------------------------------------

    def clone(self) -> "CacheHierarchy":
        """Independent copy of both levels and the DRAM traffic counters."""
        out = CacheHierarchy.__new__(CacheHierarchy)
        out.config = self.config
        out.line_words = self.line_words
        out.l1 = self.l1.clone()
        out.l2 = self.l2.clone()
        out.mem_lines_read = self.mem_lines_read
        out.mem_lines_written = self.mem_lines_written
        out.static_watch = self.static_watch
        out.static_watch_hits = self.static_watch_hits
        return out

    def reset_stats(self) -> None:
        """Zero all counters while keeping cache contents (warm state)."""
        self.l1.stats = CacheStats()
        self.l2.stats = CacheStats()
        self.mem_lines_read = 0
        self.mem_lines_written = 0

    def dram_bytes(self) -> int:
        """Total DRAM traffic in bytes (reads + writebacks)."""
        return (self.mem_lines_read + self.mem_lines_written) * self.config.l1.line_bytes
