"""Priority-lane task queue with admission control.

The service shards every job into per-cell tasks and funnels them through
one :class:`LaneQueue`.  Scheduling is weighted round-robin over the
lanes: a lane with weight ``w`` may dispatch up to ``w`` tasks before the
scheduler offers the turn to the next backlogged lane, so the
``interactive`` lane (default weight 8) overtakes a deep ``batch``
backlog within one worker completion, while ``batch`` still drains at a
guaranteed ~1/(w+1) share — neither lane can starve the other.

Admission control is per lane: a lane whose backlog is at
``max_pending`` rejects further tasks with :class:`AdmissionError`
*before* they consume queue memory or worker time; the caller (service
front end or socket server) surfaces the rejection to the client, which
can retry, shrink the job, or use the other lane.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Dict, Iterable, Optional, Tuple

#: The default lanes, in scheduling-preference order.
LANES: Tuple[str, ...] = ("interactive", "batch")

#: Weighted-round-robin dispatch credits per lane.
DEFAULT_WEIGHTS: Dict[str, int] = {"interactive": 8, "batch": 1}

#: Per-lane backlog bounds.  Interactive requests are small by contract,
#: batch sweeps are sharded into many cells, hence the asymmetry.
DEFAULT_MAX_PENDING: Dict[str, int] = {"interactive": 4_096, "batch": 262_144}


class AdmissionError(RuntimeError):
    """A lane's backlog is full; the task was rejected, not queued."""

    def __init__(self, lane: str, pending: int, limit: int) -> None:
        super().__init__(
            f"lane {lane!r} backlog is full ({pending}/{limit} tasks pending)"
        )
        self.lane = lane
        self.pending = pending
        self.limit = limit


class LaneQueue:
    """Multi-lane FIFO with weighted-round-robin ``get`` ordering."""

    def __init__(
        self,
        lanes: Iterable[str] = LANES,
        weights: Optional[Dict[str, int]] = None,
        max_pending: Optional[Dict[str, int]] = None,
    ) -> None:
        self.lanes: Tuple[str, ...] = tuple(lanes)
        if not self.lanes:
            raise ValueError("LaneQueue needs at least one lane")
        self.weights = {
            lane: max(1, int((weights or DEFAULT_WEIGHTS).get(lane, 1)))
            for lane in self.lanes
        }
        self.max_pending = {
            lane: int((max_pending or DEFAULT_MAX_PENDING).get(lane, 0)) or None
            for lane in self.lanes
        }
        self._queues: Dict[str, deque] = {lane: deque() for lane in self.lanes}
        self._credits: Dict[str, int] = dict(self.weights)
        self._event = asyncio.Event()
        self.admitted: Dict[str, int] = {lane: 0 for lane in self.lanes}
        self.rejected: Dict[str, int] = {lane: 0 for lane in self.lanes}
        self.served: Dict[str, int] = {lane: 0 for lane in self.lanes}

    # ------------------------------------------------------------------

    def put_nowait(self, item, lane: str) -> None:
        """Queue a task on ``lane``; :class:`AdmissionError` when full."""
        if lane not in self._queues:
            raise ValueError(f"unknown lane {lane!r} (have {list(self.lanes)})")
        queue = self._queues[lane]
        limit = self.max_pending[lane]
        if limit is not None and len(queue) >= limit:
            self.rejected[lane] += 1
            raise AdmissionError(lane, len(queue), limit)
        queue.append(item)
        self.admitted[lane] += 1
        self._event.set()

    def _pick_lane(self) -> Optional[str]:
        """The lane the next dispatch is owed to, or ``None`` when empty.

        Two passes over the lane order: first honoring remaining credits,
        then — when every backlogged lane has exhausted its credit — a
        refill and a retry.  The refill only happens on exhaustion, so an
        idle high-priority lane never banks credit against a busy one.
        """
        for _ in range(2):
            for lane in self.lanes:
                if self._queues[lane] and self._credits[lane] > 0:
                    return lane
            if not any(self._queues[lane] for lane in self.lanes):
                return None
            self._credits = dict(self.weights)
        return None  # unreachable: refill guarantees a credit

    def get_nowait(self):
        """Dequeue the next task honoring lane weights, or raise ``IndexError``."""
        lane = self._pick_lane()
        if lane is None:
            raise IndexError("LaneQueue is empty")
        self._credits[lane] -= 1
        self.served[lane] += 1
        item = self._queues[lane].popleft()
        if not any(self._queues.values()):
            self._event.clear()
        return item

    async def get(self):
        """Await the next task honoring lane weights."""
        while True:
            try:
                return self.get_nowait()
            except IndexError:
                self._event.clear()
                await self._event.wait()

    # ------------------------------------------------------------------

    def pending(self) -> Dict[str, int]:
        return {lane: len(queue) for lane, queue in self._queues.items()}

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def stats(self) -> Dict:
        return {
            "lanes": list(self.lanes),
            "weights": dict(self.weights),
            "max_pending": dict(self.max_pending),
            "pending": self.pending(),
            "admitted": dict(self.admitted),
            "rejected": dict(self.rejected),
            "served": dict(self.served),
        }
