"""The warm-worker job engine: asyncio front end, persistent process pool.

One :class:`StencilService` owns a :class:`LaneQueue` and a persistent
``concurrent.futures.ProcessPoolExecutor``.  Jobs are sharded into
per-cell tasks at submission, so scheduling fairness is per *cell*, not
per job — a 10,000-cell batch sweep holds a worker for exactly one cell
at a time and an interactive request overtakes it at the next completion.
Worker processes live for the service's whole lifetime and keep one
:class:`~repro.bench.runner.ExperimentRunner` per request profile, so the
compiled program pool, columnar plans, template bundles and the AOT
artifact store stay warm across requests instead of being rebuilt per
sweep.

Request coalescing: every measurable task is keyed by the same
content-addressed digest the disk cache uses
(:func:`repro.bench.cache.cache_key`), so N identical concurrent
submissions share one in-flight simulation, later identical submissions
are served from a bounded in-memory result memo, and anything that
reaches a worker still checks the shared disk cache first.  Exactly-once
cost for identical traffic falls out of those three layers.

Crash isolation: a worker that dies (OOM-killed, segfaulted, or the
deliberate ``action="crash"`` self-test probe) breaks the process pool;
the engine rebuilds the pool, retries each interrupted task once (the
innocent victims of a neighbour's crash), and converts a second failure
into a per-cell error — the engine itself never goes down with a worker.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import multiprocessing
import os
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.cache import cache_key
from repro.bench.parallel import Cell, CellResult
from repro.kernels.base import KernelOptions
from repro.machine import artifacts
from repro.machine.config import LX2, M4, MachineConfig
from repro.machine.timing import SamplePlan
from repro.service.queue import AdmissionError, LaneQueue

#: Actions a task may carry.  ``crash`` is the crash-recovery self-test
#: probe: the worker exits hard, exactly like a segfault or the OOM
#: killer, so tests and operators can prove the engine survives it.
ACTIONS = ("measure", "precompile", "crash")

#: How many times a task interrupted by a broken pool is re-dispatched
#: before the failure is surfaced as its per-cell error.
MAX_ATTEMPTS = 2


def resolve_machine(machine) -> MachineConfig:
    """Accept a :class:`MachineConfig`, a preset name, or ``None`` (LX2)."""
    if machine is None:
        return LX2()
    if isinstance(machine, MachineConfig):
        return machine
    name = str(machine).lower()
    if name == "lx2":
        return LX2()
    if name == "m4":
        return M4()
    raise ValueError(f"unknown machine {machine!r} (use lx2 or m4)")


# -- worker side --------------------------------------------------------------

#: Worker-process runner cache, one ExperimentRunner per request profile.
#: This is what makes the pool *warm*: program pools, columnar plans and
#: measurement memos accumulate in the worker across requests.
_RUNNERS: Dict[str, object] = {}


def _runner_for(profile: Dict):
    runner = _RUNNERS.get(profile["key"])
    if runner is None:
        from repro.bench.runner import ExperimentRunner

        runner = ExperimentRunner(
            profile["machine"],
            profile["options"],
            cache_dir=profile["cache_dir"],
            engine=profile["engine"],
            timing=profile["timing"],
            steady=profile.get("steady"),
            sample=profile.get("sample"),
            codegen=profile.get("codegen"),
            artifact_dir=profile["artifact_dir"],
        )
        _RUNNERS[profile["key"]] = runner
    return runner


def run_service_task(payload: Dict) -> CellResult:
    """Execute one per-cell task in a worker process.

    This is the single cell-execution entry point shared by the service
    and the batch executor (``run_cells`` submits through the service).
    Exceptions are captured as :attr:`CellResult.error`; only a hard
    process death (``action="crash"``, a real segfault) escapes, and the
    parent's broken-pool recovery turns that into a per-cell error too.
    """
    if payload["action"] == "crash":
        os._exit(17)
    index = payload["index"]
    method, stencil, shape = payload["cell"]
    warm, plan, iters = payload["warm"], payload["plan"], payload["iters"]
    start = time.perf_counter()
    try:
        runner = _runner_for(payload["profile"])
        if payload["action"] == "precompile":
            info = runner.precompile_cell(method, stencil, shape)
            return CellResult(
                index,
                method,
                stencil,
                tuple(shape),
                source="precompiled",
                seconds=time.perf_counter() - start,
                info=info,
            )
        measurement = runner.measure(method, stencil, shape, warm=warm, plan=plan, iters=iters)
        source = runner.provenance(method, stencil, shape, warm=warm, plan=plan, iters=iters)
        return CellResult(
            index,
            method,
            stencil,
            tuple(shape),
            counters=measurement.counters,
            source=source or "simulated",
            seconds=time.perf_counter() - start,
        )
    except Exception as exc:  # noqa: BLE001 — captured per cell by design
        return CellResult(
            index,
            method,
            stencil,
            tuple(shape),
            error=f"{type(exc).__name__}: {exc}",
            seconds=time.perf_counter() - start,
        )


def cell_record(result: CellResult, machine: MachineConfig) -> Dict:
    """``BENCH_*.json``-compatible record for one completed cell."""
    record = {
        "method": result.method,
        "stencil": result.stencil,
        "shape": list(result.shape),
        "source": result.source,
        "seconds": result.seconds,
    }
    if result.error is not None:
        record["error"] = result.error
    if result.info is not None:
        record["info"] = result.info
    pc = result.counters
    if pc is not None:
        record["counters"] = pc.to_dict()
        record["derived"] = {
            "ipc": pc.ipc,
            "cycles_per_point": pc.cycles_per_point,
            "l1_hit_rate": pc.l1_hit_rate,
            "l1_demand_hit_rate": pc.l1_demand_hit_rate,
            "dram_bytes_per_point": pc.dram_bytes() / pc.points if pc.points else 0.0,
            "gstencil_per_s": pc.gstencil_per_s(machine.clock_ghz),
        }
    return record


# -- parent side --------------------------------------------------------------


class _CellTask:
    """One schedulable unit: a cell plus everyone waiting on it."""

    __slots__ = ("key", "lane", "payload", "subscribers", "attempts")

    def __init__(self, key, lane: str, payload: Dict) -> None:
        self.key = key
        self.lane = lane
        self.payload = payload
        #: ``(job, local_index)`` pairs to deliver the result to.
        self.subscribers: List[Tuple["Job", int]] = []
        self.attempts = 0


class Job:
    """Handle for one submitted job: per-cell futures plus an event stream."""

    def __init__(self, job_id: int, lane: str, cells: Sequence[Cell], machine) -> None:
        loop = asyncio.get_running_loop()
        self.id = job_id
        self.lane = lane
        self.cells = [tuple(c) for c in cells]
        self.machine = machine
        self.submitted_at = time.perf_counter()
        self._futures = [loop.create_future() for _ in cells]
        self._events: asyncio.Queue = asyncio.Queue()
        self._delivered = 0

    def _deliver(self, index: int, result: CellResult) -> None:
        future = self._futures[index]
        if not future.done():
            future.set_result(result)
        self._delivered += 1
        self._events.put_nowait(("cell", result))
        if self._delivered == len(self._futures):
            self._events.put_nowait(("done", self.summary()))

    @property
    def done(self) -> bool:
        return self._delivered >= len(self._futures)

    def summary(self) -> Dict:
        finished = [f.result() for f in self._futures if f.done()]
        return {
            "job": self.id,
            "lane": self.lane,
            "cells": len(self._futures),
            "completed": len(finished),
            "errors": sum(1 for r in finished if not r.ok),
            "seconds": time.perf_counter() - self.submitted_at,
        }

    async def results(self) -> List[CellResult]:
        """All cell results, in submission order (awaits completion)."""
        return list(await asyncio.gather(*self._futures))

    async def events(self):
        """Yield ``("cell", CellResult)`` per completion, then ``("done", summary)``."""
        while True:
            kind, payload = await self._events.get()
            yield kind, payload
            if kind == "done":
                return

    def records(self) -> List[Dict]:
        """Records for every completed cell, in submission order."""
        return [
            cell_record(f.result(), self.machine) for f in self._futures if f.done()
        ]


class StencilService:
    """Persistent warm-worker job engine; the one job API for all callers.

    ``submit(cells, lane) -> Job`` is used identically by the long-running
    socket server (``repro serve``), the batch executor
    (``run_cells(jobs=N)``) and tests.  The service must be ``start()``-ed
    from a running event loop; ``async with StencilService(...)`` does the
    start/shutdown pairing.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir=None,
        artifact_dir=None,
        engine: Optional[str] = None,
        timing: Optional[str] = None,
        steady: Optional[str] = None,
        sample: Optional[bool] = None,
        codegen: Optional[str] = None,
        weights: Optional[Dict[str, int]] = None,
        max_pending: Optional[Dict[str, int]] = None,
        result_cache: int = 4096,
    ) -> None:
        self.workers = workers if workers else max(1, (os.cpu_count() or 2) - 1)
        self.cache_dir = cache_dir
        self.artifact_dir = artifact_dir
        self.engine = engine
        self.timing = timing
        self.steady = steady
        self.sample = sample
        self.codegen = codegen
        self.queue = LaneQueue(weights=weights, max_pending=max_pending)
        self.counters: Dict[str, int] = {
            "jobs": 0,
            "cells": 0,
            "coalesced_inflight": 0,
            "memo_hits": 0,
            "dispatched": 0,
            "completed": 0,
            "simulated": 0,
            "disk_hits": 0,
            "errors": 0,
            "crashes": 0,
            "retries": 0,
            "rejected": 0,
            "pool_rebuilds": 0,
        }
        self._inflight: Dict[object, _CellTask] = {}
        self._memo: "OrderedDict[object, CellResult]" = OrderedDict()
        self._memo_capacity = max(0, int(result_cache))
        self._profiles: Dict[str, Dict] = {}
        self._job_ids = itertools.count(1)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._executor_gen = 0
        self._slots: Optional[asyncio.Semaphore] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._running: set = set()
        self._accepting = False
        self.started_at: Optional[float] = None

    # -- lifecycle -----------------------------------------------------

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=multiprocessing.get_context()
        )

    async def start(self) -> "StencilService":
        if self._accepting:
            return self
        self._executor = self._make_executor()
        self._slots = asyncio.Semaphore(self.workers)
        self._dispatcher = asyncio.get_running_loop().create_task(self._dispatch_loop())
        self._accepting = True
        self.started_at = time.time()
        return self

    async def __aenter__(self) -> "StencilService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    async def shutdown(self, terminate: bool = False) -> None:
        """Stop the engine.

        Graceful (default): in-flight cells finish, queued-but-undispatched
        tasks fail with a per-cell shutdown error.  ``terminate=True`` also
        kills workers mid-cell (their tasks fail the same way).
        """
        self._accepting = False
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        # Fail everything still queued before touching the pool.
        while True:
            try:
                task = self.queue.get_nowait()
            except IndexError:
                break
            self._complete(task, self._error_result(task, "service shut down"))
        if terminate:
            self.terminate()
        if self._running:
            await asyncio.gather(*list(self._running), return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=not terminate, cancel_futures=True)
            self._executor = None

    def terminate(self) -> None:
        """Hard-stop the worker pool (callable without a running loop)."""
        executor = self._executor
        if executor is None:
            return
        executor.shutdown(wait=False, cancel_futures=True)
        for process in list(getattr(executor, "_processes", {}).values()):
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 — best-effort teardown
                pass

    # -- submission ----------------------------------------------------

    def _profile(self, machine: MachineConfig, options: KernelOptions) -> Dict:
        key = artifacts.artifact_digest(
            {
                "machine": artifacts.machine_fingerprint(machine),
                "options": dataclasses.asdict(options),
                "cache_dir": str(self.cache_dir) if self.cache_dir else None,
                "engine": self.engine,
                "timing": self.timing,
                "steady": self.steady,
                "sample": self.sample,
                "codegen": self.codegen,
                "artifact_dir": str(self.artifact_dir) if self.artifact_dir else None,
            }
        )[:16]
        profile = self._profiles.get(key)
        if profile is None:
            profile = {
                "key": key,
                "machine": machine,
                "options": options,
                "cache_dir": self.cache_dir,
                "engine": self.engine,
                "timing": self.timing,
                "steady": self.steady,
                "sample": self.sample,
                "codegen": self.codegen,
                "artifact_dir": self.artifact_dir,
            }
            self._profiles[key] = profile
        return profile

    def _task_key(self, machine, options, cell, warm, plan, iters, action):
        if action == "crash":
            return None  # never coalesced, never memoized
        method, stencil, shape = cell
        digest, _ = cache_key(
            machine, method, stencil, tuple(shape), options, plan, warm,
            iters=iters, timing=self.timing, sample=self.sample, steady=self.steady,
            codegen=self.codegen,
        )
        return (action, digest)

    @staticmethod
    def _error_result(task: _CellTask, error: str) -> CellResult:
        method, stencil, shape = task.payload["cell"]
        return CellResult(
            task.payload["index"], method, stencil, tuple(shape), error=error
        )

    async def submit(
        self,
        cells: Sequence[Cell],
        lane: str = "batch",
        machine=None,
        options: Optional[KernelOptions] = None,
        warm: bool = True,
        plan: Optional[SamplePlan] = None,
        iters: int = 1,
        action: str = "measure",
    ) -> Job:
        """Submit one job; returns a :class:`Job` streaming per-cell results.

        Admission is all-or-nothing: if the lane cannot take every task the
        job needs, :class:`AdmissionError` is raised and nothing is queued.
        Cells already in flight (or memoized, or duplicated within this
        job) don't count against admission — coalescing happens first.
        """
        if not self._accepting:
            raise RuntimeError("service is not running (call start())")
        if action not in ACTIONS:
            raise ValueError(f"unknown action {action!r} (have {ACTIONS})")
        config = resolve_machine(machine)
        options = options if options is not None else KernelOptions()
        profile = self._profile(config, options)
        job = Job(next(self._job_ids), lane, cells, config)

        # Phase 1: classify every cell without mutating any shared state,
        # so admission failure leaves the engine untouched.
        plans: List[Tuple[str, object, object]] = []  # (kind, key/task, extra)
        fresh: Dict[object, _CellTask] = {}
        for index, cell in enumerate(job.cells):
            key = self._task_key(config, options, cell, warm, plan, iters, action)
            if key is not None and key in self._memo:
                plans.append(("memo", key, index))
                continue
            if key is not None and key in self._inflight:
                plans.append(("inflight", key, index))
                continue
            if key is not None and key in fresh:
                plans.append(("local", key, index))
                continue
            payload = {
                "profile": profile,
                "index": index,
                "cell": cell,
                "warm": warm,
                "plan": plan,
                "iters": iters,
                "action": action,
            }
            task = _CellTask(key, lane, payload)
            if key is not None:
                fresh[key] = task
            plans.append(("new", task, index))

        new_tasks = [task for kind, task, _ in plans if kind == "new"]
        limit = self.queue.max_pending.get(lane)
        if limit is not None:
            backlog = self.queue.pending().get(lane, 0)
            if backlog + len(new_tasks) > limit:
                self.counters["rejected"] += len(new_tasks)
                raise AdmissionError(lane, backlog + len(new_tasks), limit)

        # Phase 2: commit.
        self.counters["jobs"] += 1
        self.counters["cells"] += len(job.cells)
        for kind, ref, index in plans:
            if kind == "memo":
                self.counters["memo_hits"] += 1
                cached = self._memo[ref]
                self._memo.move_to_end(ref)
                job._deliver(
                    index, dataclasses.replace(cached, index=index, source="memory")
                )
            elif kind == "inflight":
                self.counters["coalesced_inflight"] += 1
                self._inflight[ref].subscribers.append((job, index))
            elif kind == "local":
                self.counters["coalesced_inflight"] += 1
                fresh[ref].subscribers.append((job, index))
            else:
                task = ref
                task.subscribers.append((job, index))
                if task.key is not None:
                    self._inflight[task.key] = task
                self.queue.put_nowait(task, lane)
        return job

    # -- dispatch ------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        # Slot first, task second: the lane decision is made at the moment
        # a worker is actually free, so a task never waits head-of-line in
        # the dispatcher while higher-priority work arrives behind it.
        while True:
            await self._slots.acquire()
            try:
                task = await self.queue.get()
            except BaseException:
                self._slots.release()
                raise
            runner = asyncio.get_running_loop().create_task(self._run_task(task))
            self._running.add(runner)
            runner.add_done_callback(self._running.discard)

    async def _run_task(self, task: _CellTask) -> None:
        task.attempts += 1
        self.counters["dispatched"] += 1
        generation = self._executor_gen
        retry = False
        try:
            try:
                result = await asyncio.get_running_loop().run_in_executor(
                    self._executor, run_service_task, task.payload
                )
            except BrokenProcessPool as exc:
                self.counters["crashes"] += 1
                self._rebuild_executor(generation)
                if task.attempts < MAX_ATTEMPTS and self._accepting:
                    retry = True
                    result = None
                else:
                    result = self._error_result(task, f"WorkerCrashed: {exc}")
            except asyncio.CancelledError:
                result = self._error_result(task, "service shut down")
            except Exception as exc:  # noqa: BLE001 — dispatch-layer failure
                result = self._error_result(task, f"{type(exc).__name__}: {exc}")
        finally:
            self._slots.release()
        if retry:
            self.counters["retries"] += 1
            try:
                self.queue.put_nowait(task, task.lane)
            except AdmissionError as exc:
                self._complete(task, self._error_result(task, str(exc)))
        else:
            self._complete(task, result)

    def _rebuild_executor(self, broken_generation: int) -> None:
        """Replace a broken pool exactly once per breakage."""
        if self._executor_gen != broken_generation or self._executor is None:
            return  # a sibling failure already rebuilt it
        self._executor_gen += 1
        self.counters["pool_rebuilds"] += 1
        broken = self._executor
        self._executor = self._make_executor()
        broken.shutdown(wait=False, cancel_futures=True)

    def _complete(self, task: _CellTask, result: CellResult) -> None:
        if task.key is not None and self._inflight.get(task.key) is task:
            del self._inflight[task.key]
        self.counters["completed"] += 1
        if result.error is not None:
            self.counters["errors"] += 1
        elif result.source == "simulated":
            self.counters["simulated"] += 1
        elif result.source == "disk":
            self.counters["disk_hits"] += 1
        if (
            task.key is not None
            and result.ok
            and task.payload["action"] == "measure"
            and self._memo_capacity
        ):
            self._memo[task.key] = result
            self._memo.move_to_end(task.key)
            while len(self._memo) > self._memo_capacity:
                self._memo.popitem(last=False)
        for job, index in task.subscribers:
            job._deliver(index, dataclasses.replace(result, index=index))

    # -- introspection -------------------------------------------------

    def stats(self) -> Dict:
        return {
            "workers": self.workers,
            "accepting": self._accepting,
            "uptime_seconds": time.time() - self.started_at if self.started_at else 0.0,
            "counters": dict(self.counters),
            "queue": self.queue.stats(),
            "inflight": len(self._inflight),
            "memo_entries": len(self._memo),
            "memo_capacity": self._memo_capacity,
            "profiles": len(self._profiles),
            "executor_generation": self._executor_gen,
        }
