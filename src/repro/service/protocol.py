"""JSON-lines Unix-socket transport for the stencil service.

One request per connection, newline-delimited JSON both ways — greppable
with ``nc -U`` and implementable from any language without a dependency.
``submit`` responses are *streamed*: an ``accepted`` event, one ``cell``
event per completed cell (carrying the same ``BENCH_*.json``-compatible
record the batch engine writes), then a ``done`` summary.  ``stats``,
``ping`` and ``shutdown`` are single-line request/response.

The server side (:class:`ServiceServer`) is asyncio and shares the event
loop with :class:`~repro.service.engine.StencilService`; the client side
(:class:`ServiceClient`) is a plain blocking stdlib-socket client so
``repro submit``, shell scripts and tests need no event loop.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import socket
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.kernels.base import KernelOptions
from repro.machine.timing import SamplePlan
from repro.service.engine import StencilService, cell_record, resolve_machine
from repro.service.queue import AdmissionError

#: Bumped on any incompatible wire change; echoed by ``ping``.
PROTOCOL_VERSION = 1

#: Maximum accepted request-line length (a 100k-cell sweep fits well under this).
MAX_LINE = 64 * 1024 * 1024


def _encode(message: Dict) -> bytes:
    return json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"


def decode_plan(payload: Optional[Dict]) -> Optional[SamplePlan]:
    if payload is None:
        return None
    return SamplePlan(**payload)


def decode_options(payload: Optional[Dict]) -> Optional[KernelOptions]:
    if payload is None:
        return None
    return KernelOptions(**payload)


def decode_cells(payload: Sequence) -> List[tuple]:
    cells = []
    for entry in payload:
        method, stencil, shape = entry
        cells.append((str(method), str(stencil), tuple(int(n) for n in shape)))
    return cells


class ServiceServer:
    """Asyncio Unix-socket front end for one :class:`StencilService`."""

    def __init__(self, service: StencilService, socket_path) -> None:
        self.service = service
        self.socket_path = str(socket_path)
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop = asyncio.Event()

    async def start(self) -> "ServiceServer":
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._server = await asyncio.start_unix_server(
            self._handle, path=self.socket_path, limit=MAX_LINE
        )
        return self

    async def serve_forever(self) -> None:
        """Serve until a client sends ``shutdown`` (or :meth:`stop` is called)."""
        if self._server is None:
            await self.start()
        await self._stop.wait()
        await self.close()

    def stop(self) -> None:
        self._stop.set()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            line = await reader.readline()
            if not line.strip():
                return
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                writer.write(_encode({"event": "error", "error": f"bad json: {exc}"}))
                return
            op = request.get("op")
            if op == "submit":
                await self._handle_submit(request, writer)
            elif op == "stats":
                writer.write(_encode({"event": "stats", "stats": self.service.stats()}))
            elif op == "ping":
                writer.write(
                    _encode({"event": "pong", "protocol": PROTOCOL_VERSION})
                )
            elif op == "shutdown":
                writer.write(_encode({"event": "bye"}))
                self.stop()
            else:
                writer.write(_encode({"event": "error", "error": f"unknown op {op!r}"}))
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-stream; nothing to clean up
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_submit(self, request: Dict, writer: asyncio.StreamWriter) -> None:
        try:
            cells = decode_cells(request["cells"])
            machine = resolve_machine(request.get("machine"))
            job = await self.service.submit(
                cells,
                lane=request.get("lane", "batch"),
                machine=machine,
                options=decode_options(request.get("options")),
                warm=bool(request.get("warm", True)),
                plan=decode_plan(request.get("plan")),
                iters=int(request.get("iters", 1)),
                action=request.get("action", "measure"),
            )
        except AdmissionError as exc:
            writer.write(
                _encode(
                    {
                        "event": "rejected",
                        "error": str(exc),
                        "lane": exc.lane,
                        "pending": exc.pending,
                        "limit": exc.limit,
                    }
                )
            )
            return
        except (KeyError, ValueError, TypeError, RuntimeError) as exc:
            writer.write(_encode({"event": "error", "error": f"{type(exc).__name__}: {exc}"}))
            return
        writer.write(
            _encode(
                {"event": "accepted", "job": job.id, "lane": job.lane, "cells": len(job.cells)}
            )
        )
        await writer.drain()
        async for kind, payload in job.events():
            if kind == "cell":
                writer.write(
                    _encode(
                        {
                            "event": "cell",
                            "job": job.id,
                            "index": payload.index,
                            "ok": payload.ok,
                            "record": cell_record(payload, machine),
                        }
                    )
                )
            else:
                writer.write(_encode({"event": "done", "job": job.id, "summary": payload}))
            await writer.drain()


class ServiceClient:
    """Blocking JSON-lines client (one connection per request)."""

    def __init__(self, socket_path, timeout: Optional[float] = None) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout

    def _request(self, message: Dict) -> Iterable[Dict]:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            if self.timeout is not None:
                sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            sock.sendall(_encode(message))
            with sock.makefile("rb") as stream:
                for line in stream:
                    if line.strip():
                        yield json.loads(line)

    def _one(self, message: Dict) -> Dict:
        for response in self._request(message):
            return response
        raise ConnectionError("service closed the connection without responding")

    # ------------------------------------------------------------------

    def ping(self) -> Dict:
        return self._one({"op": "ping"})

    def stats(self) -> Dict:
        response = self._one({"op": "stats"})
        if response.get("event") != "stats":
            raise RuntimeError(response.get("error", f"unexpected reply {response!r}"))
        return response["stats"]

    def shutdown(self) -> Dict:
        return self._one({"op": "shutdown"})

    def submit(
        self,
        cells: Sequence,
        lane: str = "batch",
        machine: Optional[str] = None,
        options: Optional[KernelOptions] = None,
        warm: bool = True,
        plan: Optional[SamplePlan] = None,
        iters: int = 1,
        action: str = "measure",
        on_event: Optional[Callable[[Dict], None]] = None,
    ) -> Dict:
        """Submit and stream to completion.

        Returns ``{"job", "lane", "records", "summary"}`` with ``records``
        in submission order; raises on rejection or server error.  Pass
        ``on_event`` to observe each raw event as it arrives (progress).
        """
        message = {
            "op": "submit",
            "cells": [[m, s, list(shape)] for m, s, shape in cells],
            "lane": lane,
            "warm": warm,
            "iters": iters,
            "action": action,
        }
        if machine is not None:
            message["machine"] = machine
        if options is not None:
            message["options"] = dataclasses.asdict(options)
        if plan is not None:
            message["plan"] = dataclasses.asdict(plan)
        records: List[Optional[Dict]] = [None] * len(message["cells"])
        result: Dict = {"lane": lane, "records": records}
        for event in self._request(message):
            if on_event is not None:
                on_event(event)
            kind = event.get("event")
            if kind == "accepted":
                result["job"] = event["job"]
            elif kind == "cell":
                records[event["index"]] = event["record"]
            elif kind == "done":
                result["summary"] = event["summary"]
                return result
            elif kind == "rejected":
                raise AdmissionError(
                    event.get("lane", lane), event.get("pending", 0), event.get("limit", 0)
                )
            else:
                raise RuntimeError(event.get("error", f"unexpected event {event!r}"))
        raise ConnectionError("service closed the stream before the job finished")
