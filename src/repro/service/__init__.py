"""Stencil-as-a-service: a persistent warm-worker job engine.

The batch harness (:mod:`repro.bench.parallel`) forks a fresh worker pool
per sweep, so every request pays process spin-up and pool re-warm.  This
package keeps the pool — and with it every worker's
:class:`~repro.bench.runner.ExperimentRunner`, the 256-entry compiled
program pool, columnar plans and the AOT artifact store — alive across
requests, behind an asyncio front end:

* :class:`~repro.service.engine.StencilService` — ``submit(cells, lane)``
  job API with in-flight request coalescing, a bounded service-level
  result memo, per-cell streaming and crash-isolated workers;
* :class:`~repro.service.queue.LaneQueue` — weighted-round-robin priority
  lanes with admission control, so a sharded 2048x2048 sweep cannot
  starve interactive single-cell requests;
* :mod:`~repro.service.protocol` — a JSON-lines Unix-socket transport
  (``repro serve`` / ``repro submit``) streaming the same
  ``BENCH_*.json``-compatible per-cell records the batch engine writes.

The batch executor itself is a client: ``run_cells(jobs=N)`` drives a
short-lived service, so the CLI sweeps and the long-running server share
one job API and one worker implementation.
"""

from repro.service.engine import Job, StencilService, run_service_task
from repro.service.queue import AdmissionError, LANES, LaneQueue
from repro.service.protocol import ServiceClient, ServiceServer

__all__ = [
    "AdmissionError",
    "Job",
    "LANES",
    "LaneQueue",
    "ServiceClient",
    "ServiceServer",
    "StencilService",
    "run_service_task",
]
